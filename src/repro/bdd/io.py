"""Saving and loading decision diagrams (BuDDy's ``bdd_save/bdd_load``).

The C libraries the paper builds on can persist BDDs to disk; analyses
use this to checkpoint expensive results (e.g. a points-to relation)
between runs.  The format here is a small text format, one node per
line::

    bdd <num_vars> <num_nodes> <root>
    <id> <level> <low> <high>
    ...

Node ids are file-local (0/1 are the terminals); loading rebuilds the
diagram through the target manager's hash-consing, so the loaded root
is canonical in that manager.  The same functions serve the ZDD backend
(tag ``zdd``).
"""

from __future__ import annotations

from typing import Dict, TextIO

from repro.bdd.manager import BDDError, BDDManager
from repro.bdd.zdd import ZDDManager

__all__ = ["save_diagram", "load_diagram", "dumps_diagram", "loads_diagram"]


def dumps_diagram(manager, root: int) -> str:
    """Serialize the diagram rooted at ``root`` to a string."""
    tag = "zdd" if isinstance(manager, ZDDManager) else "bdd"
    # Topologically ordered listing: children before parents.
    order = []
    seen = set()

    def visit(node: int) -> None:
        if node in seen or manager.is_terminal(node):
            return
        seen.add(node)
        visit(manager._low[node])
        visit(manager._high[node])
        order.append(node)

    visit(root)
    local: Dict[int, int] = {0: 0, 1: 1}
    lines = [f"{tag} {manager.num_vars} {len(order)} "]
    for i, node in enumerate(order, start=2):
        local[node] = i
        # BDD nodes are written by stable *variable id* so a file saved
        # under one variable order loads correctly under any other; the
        # ZDD manager never reorders, so its levels are its variables.
        var = (
            manager.var_of(node)
            if tag == "bdd"
            else manager._level[node]
        )
        lines.append(
            f"{i} {var} "
            f"{local[manager._low[node]]} {local[manager._high[node]]}"
        )
    lines[0] += str(local.get(root, root))
    return "\n".join(lines) + "\n"


def loads_diagram(manager, text: str) -> int:
    """Rebuild a serialized diagram in ``manager``; returns the root.

    The manager must have at least as many variables as the file
    declares and be of the matching kind (bdd/zdd).
    """
    lines = [l for l in text.splitlines() if l.strip()]
    if not lines:
        raise BDDError("empty diagram file")
    header = lines[0].split()
    if len(header) != 4:
        raise BDDError(f"bad diagram header: {lines[0]!r}")
    tag, num_vars, num_nodes, root_id = (
        header[0],
        int(header[1]),
        int(header[2]),
        int(header[3]),
    )
    expected = "zdd" if isinstance(manager, ZDDManager) else "bdd"
    if tag != expected:
        raise BDDError(f"diagram kind {tag!r} does not match {expected!r}")
    if num_vars > manager.num_vars:
        raise BDDError(
            f"diagram needs {num_vars} variables, manager has "
            f"{manager.num_vars}"
        )
    local: Dict[int, int] = {0: 0, 1: 1}
    is_bdd = expected == "bdd"
    for line in lines[1 : num_nodes + 1]:
        parts = line.split()
        if len(parts) != 4:
            raise BDDError(f"bad diagram line: {line!r}")
        node_id, var, low, high = (int(p) for p in parts)
        if low not in local or high not in local:
            raise BDDError(f"diagram line references unknown node: {line!r}")
        if is_bdd:
            # Rebuild through ITE on the *variable*: correct whatever
            # level that variable currently occupies in the manager.
            local[node_id] = manager.ite(
                manager.var(var), local[high], local[low]
            )
        else:
            local[node_id] = manager.mk(var, local[low], local[high])
    if root_id not in local:
        raise BDDError(f"unknown diagram root {root_id}")
    return local[root_id]


def save_diagram(manager, root: int, fp: TextIO) -> None:
    """Write the diagram to an open text file."""
    fp.write(dumps_diagram(manager, root))


def load_diagram(manager, fp: TextIO) -> int:
    """Read a diagram from an open text file; returns the root node."""
    return loads_diagram(manager, fp.read())
