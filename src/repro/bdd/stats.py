"""Always-on raw kernel counters for the BDD/ZDD managers.

The managers' hot paths (apply-cache probes, node creation, GC sweeps)
bump plain integer fields or list slots on a :class:`KernelStats` —
one ``+= 1`` next to the existing cache probe, no dict lookups, no
telemetry check.  ``repro.telemetry`` pulls these raw numbers into its
metrics registry at snapshot time, so the kernels stay ignorant of the
observability layer and pay the same (negligible) cost whether or not
telemetry is enabled.

Per-binary-op counters are lists indexed by the manager's op tag
(``_OP_AND`` etc.), matching the apply cache's own keying.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

__all__ = ["KernelStats"]


class KernelStats:
    """Raw counters for one manager instance.

    ``op_names`` names the binary-op tags in tag order (index ``i``
    corresponds to the manager's op tag ``i``); extra unary/cache
    counters are scalar hit/miss pairs, zero when a manager has no such
    cache.
    """

    __slots__ = (
        "op_names",
        "op_hits",
        "op_misses",
        "not_hits",
        "not_misses",
        "exist_hits",
        "exist_misses",
        "and_exist_hits",
        "and_exist_misses",
        "replace_hits",
        "replace_misses",
        "change_hits",
        "change_misses",
        "count_hits",
        "count_misses",
        "nodes_created",
        "peak_live_nodes",
        "gc_runs",
        "gc_seconds",
        "gc_reclaimed",
        "last_gc_seconds",
        "reorder_runs",
        "reorder_seconds",
    )

    _SCALAR_CACHES = ("not", "exist", "and_exist", "replace", "change", "count")

    def __init__(self, op_names: Tuple[str, ...]) -> None:
        self.op_names = op_names
        self.op_hits: List[int] = [0] * len(op_names)
        self.op_misses: List[int] = [0] * len(op_names)
        self.not_hits = 0
        self.not_misses = 0
        self.exist_hits = 0
        self.exist_misses = 0
        self.and_exist_hits = 0
        self.and_exist_misses = 0
        self.replace_hits = 0
        self.replace_misses = 0
        self.change_hits = 0
        self.change_misses = 0
        self.count_hits = 0
        self.count_misses = 0
        self.nodes_created = 0
        self.peak_live_nodes = 0
        self.gc_runs = 0
        self.gc_seconds = 0.0
        self.gc_reclaimed = 0
        self.last_gc_seconds = 0.0
        self.reorder_runs = 0
        self.reorder_seconds = 0.0

    def note_live(self, live: int) -> None:
        """Update the live-node high-water mark.

        Not called from ``mk`` hot paths: managers report at the natural
        peaks — GC entry (live count is maximal just before a sweep) and
        ``table_stats()`` (every telemetry snapshot / sampler tick) — so
        the mark tracks the true maximum without per-node cost.
        """
        if live > self.peak_live_nodes:
            self.peak_live_nodes = live

    def per_op(self) -> List[Tuple[str, int, int]]:
        """``(op_name, hits, misses)`` for every binary-op tag."""
        return [
            (name, self.op_hits[i], self.op_misses[i])
            for i, name in enumerate(self.op_names)
        ]

    def op_totals(self) -> Tuple[int, int]:
        return (sum(self.op_hits), sum(self.op_misses))

    def scalar_caches(self) -> Iterator[Tuple[str, int, int]]:
        """``(cache_name, hits, misses)`` for the unary/auxiliary caches."""
        for cache in self._SCALAR_CACHES:
            yield (
                f"{cache}_cache",
                getattr(self, f"{cache}_hits"),
                getattr(self, f"{cache}_misses"),
            )

    def reset(self) -> None:
        for i in range(len(self.op_hits)):
            self.op_hits[i] = 0
            self.op_misses[i] = 0
        for cache in self._SCALAR_CACHES:
            setattr(self, f"{cache}_hits", 0)
            setattr(self, f"{cache}_misses", 0)
        self.nodes_created = 0
        self.peak_live_nodes = 0
        self.gc_runs = 0
        self.gc_seconds = 0.0
        self.gc_reclaimed = 0
        self.last_gc_seconds = 0.0
        self.reorder_runs = 0
        self.reorder_seconds = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        hits, misses = self.op_totals()
        return (
            f"KernelStats(apply={hits}h/{misses}m nodes={self.nodes_created} "
            f"gc={self.gc_runs})"
        )
