"""Finite domain blocks over the BDD manager (BuDDy's ``fdd`` layer).

Section 6.2 of the paper notes that BuDDy's *finite domain blocks*
"provide a convenient way to group together BDD variables, much like
the physical domains in Jedd".  This module reproduces that layer: a
:class:`FiniteDomain` is a block of BDD variables encoding integers in
``[0, size)``, with the operations C programmers use when hand-coding
analyses against BuDDy (``fdd_ithvar``, ``fdd_equals``,
``fdd_domain``, ``fdd_satcount``, pair-based replace).

The Jedd runtime's :class:`~repro.relations.domain.PhysicalDomain`
plays the same role one level up; this layer exists for low-level code
(like ``repro.analyses.lowlevel``) and as the historically faithful
substrate interface.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.bdd.manager import FALSE, TRUE, BDDError, BDDManager

__all__ = ["FiniteDomain", "FDDManager"]


class FiniteDomain:
    """A block of BDD variables encoding integers ``0 .. size-1``."""

    def __init__(self, name: str, size: int, levels: List[int]) -> None:
        self.name = name
        self.size = size
        self.levels = levels  # index 0 = least significant bit
        self.bits = len(levels)

    def __repr__(self) -> str:
        return f"FiniteDomain({self.name!r}, size={self.size})"


class FDDManager:
    """A BDD manager with finite-domain conveniences.

    Domains are allocated with :meth:`extdomain` (BuDDy's
    ``fdd_extdomain``); by default consecutive domains declared in one
    call are bit-interleaved, the layout pair-encoded relations want.
    """

    def __init__(self) -> None:
        self.manager = BDDManager(0)
        self.domains: Dict[str, FiniteDomain] = {}

    def extdomain(
        self, specs: Sequence[Tuple[str, int]], interleave: bool = True
    ) -> List[FiniteDomain]:
        """Allocate finite domains; ``specs`` is (name, size) pairs."""
        created: List[FiniteDomain] = []
        widths = []
        for name, size in specs:
            if name in self.domains:
                raise BDDError(f"finite domain {name!r} already exists")
            if size < 1:
                raise BDDError("finite domain size must be positive")
            widths.append(max(1, (size - 1).bit_length()))
        base = self.manager.num_vars
        total = sum(widths)
        self.manager.add_vars(total)
        next_level = base
        if interleave:
            level_lists: List[List[int]] = [[0] * w for w in widths]
            for i in range(max(widths)):
                for j, w in enumerate(widths):
                    if i < w:
                        level_lists[j][w - 1 - i] = next_level
                        next_level += 1
        else:
            level_lists = []
            for w in widths:
                levels = [0] * w
                for i in range(w):
                    levels[w - 1 - i] = next_level
                    next_level += 1
                level_lists.append(levels)
        for (name, size), levels in zip(specs, level_lists):
            dom = FiniteDomain(name, size, levels)
            self.domains[name] = dom
            created.append(dom)
        return created

    # ------------------------------------------------------------------
    # Encoding (fdd_ithvar and friends)
    # ------------------------------------------------------------------

    def ithvar(self, domain: FiniteDomain | str, value: int) -> int:
        """BDD of ``domain == value`` (BuDDy's ``fdd_ithvar``)."""
        dom = self._dom(domain)
        if not 0 <= value < dom.size:
            raise BDDError(
                f"value {value} outside finite domain {dom.name} "
                f"[0, {dom.size})"
            )
        return self.manager.cube(
            {dom.levels[j]: bool(value >> j & 1) for j in range(dom.bits)}
        )

    def domain_bdd(self, domain: FiniteDomain | str) -> int:
        """BDD of ``domain < size`` (BuDDy's ``fdd_domain``).

        For sizes that are not a power of two this excludes the unused
        bit patterns.
        """
        dom = self._dom(domain)
        node = FALSE
        for value in range(dom.size):
            node = self.manager.apply_or(node, self.ithvar(dom, value))
        return node

    def equals(
        self, a: FiniteDomain | str, b: FiniteDomain | str
    ) -> int:
        """BDD of ``a == b`` over two equal-width domains
        (BuDDy's ``fdd_equals``)."""
        da, db = self._dom(a), self._dom(b)
        if da.bits != db.bits:
            raise BDDError(
                f"fdd_equals: width mismatch {da.name}/{db.name}"
            )
        node = TRUE
        for la, lb in zip(da.levels, db.levels):
            both = self.manager.apply_and(
                self.manager.var(la), self.manager.var(lb)
            )
            neither = self.manager.apply_and(
                self.manager.nvar(la), self.manager.nvar(lb)
            )
            node = self.manager.apply_and(
                node, self.manager.apply_or(both, neither)
            )
        return node

    def tuple_bdd(
        self, assignment: Dict[FiniteDomain | str, int]
    ) -> int:
        """Conjunction of ``domain == value`` constraints."""
        node = TRUE
        for domain, value in assignment.items():
            node = self.manager.apply_and(node, self.ithvar(domain, value))
        return node

    # ------------------------------------------------------------------
    # Quantification / movement
    # ------------------------------------------------------------------

    def exist(self, node: int, *domains: FiniteDomain | str) -> int:
        """Quantify whole domains out (``fdd_makeset`` + ``bdd_exist``)."""
        levels: List[int] = []
        for domain in domains:
            levels.extend(self._dom(domain).levels)
        return self.manager.exist(node, levels)

    def and_exist(
        self, a: int, b: int, *domains: FiniteDomain | str
    ) -> int:
        """Fused conjunction + quantification over whole domains."""
        levels: List[int] = []
        for domain in domains:
            levels.extend(self._dom(domain).levels)
        return self.manager.and_exist(a, b, levels)

    def replace(
        self, node: int, pairs: Sequence[Tuple[FiniteDomain | str,
                                               FiniteDomain | str]]
    ) -> int:
        """Move domains (``fdd_newpair``/``fdd_setpair``/``bdd_replace``)."""
        perm: Dict[int, int] = {}
        for src, dst in pairs:
            ds, dd = self._dom(src), self._dom(dst)
            if ds.bits != dd.bits:
                raise BDDError(
                    f"fdd replace: width mismatch {ds.name}/{dd.name}"
                )
            for a, b in zip(ds.levels, dd.levels):
                perm[a] = b
        return self.manager.replace(node, perm)

    # ------------------------------------------------------------------
    # Dynamic reordering (BuDDy's ``bdd_reorder`` with fdd blocks)
    # ------------------------------------------------------------------

    def domain_groups(self) -> List[List[int]]:
        """Each finite domain's variables, as blocks for group sifting."""
        return [list(dom.levels) for dom in self.domains.values()]

    def sift(self, max_growth: float = 2.0, group_by_domain: bool = True):
        """Reorder variables by sifting; returns the ``ReorderEvent``.

        With ``group_by_domain`` (BuDDy's ``fdd_intaddvarblock``
        behaviour) the variables of one finite domain move as a unit;
        without it every variable sifts independently.
        """
        if group_by_domain:
            return self.manager.sift_groups(
                self.domain_groups(), max_growth=max_growth
            )
        return self.manager.sift(max_growth=max_growth)

    def enable_reorder(
        self,
        threshold: int | None = None,
        max_growth: float | None = None,
        group_by_domain: bool = True,
    ) -> None:
        """Enable automatic sifting on node-table growth.

        The group list is re-evaluated at each pass, so domains declared
        later are included.
        """
        self.manager.enable_reorder(
            threshold=threshold, max_growth=max_growth
        )
        self.manager.reorder_groups = (
            self.domain_groups if group_by_domain else None
        )

    def disable_reorder(self):
        """Context manager suppressing automatic reordering."""
        return self.manager.disable_reorder()

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def satcount(self, node: int, *domains: FiniteDomain | str) -> int:
        """Number of assignments over the given domains
        (``fdd_satcount``-style)."""
        levels: List[int] = []
        for domain in domains:
            levels.extend(self._dom(domain).levels)
        return self.manager.sat_count(node, levels)

    def all_tuples(
        self, node: int, *domains: FiniteDomain | str
    ) -> Iterator[Tuple[int, ...]]:
        """Iterate integer tuples over the given domains."""
        doms = [self._dom(d) for d in domains]
        levels: List[int] = []
        for dom in doms:
            levels.extend(dom.levels)
        for assignment in self.manager.all_sat(node, levels):
            yield tuple(
                sum(
                    1 << j
                    for j in range(dom.bits)
                    if assignment[dom.levels[j]]
                )
                for dom in doms
            )

    def _dom(self, domain: FiniteDomain | str) -> FiniteDomain:
        if isinstance(domain, FiniteDomain):
            return domain
        try:
            return self.domains[domain]
        except KeyError:
            raise BDDError(f"unknown finite domain {domain!r}") from None
