"""Out-of-core streaming BDD kernel (Adiar-style time-forward processing).

Every other kernel in this reproduction (reference, arena, ZDD) keeps
the whole node table in Python lists, so the analyses die once the
table outgrows RAM.  Sølvsten & van de Pol (PAPERS.md, arXiv
2505.11229) show that an external-memory BDD package handles exactly
the relational-product workloads Jedd generates by replacing the
depth-first recursion with *time-forward processing*: every operation
becomes one sweep **down** the levels (a level-ordered request queue —
a child request always sits at a strictly deeper level than its
parent, so processing levels in ascending order visits every request
after all its producers) followed by one sweep **up** (resolving each
level's requests through hash-consing, children before parents).  Both
phases touch data level-major and strictly forward, which is what
makes them spillable: cold levels of the request queue go to disk, the
node arrays page to disk under an LRU budget, and the unique table
overflows into level-major sorted runs.

:class:`OocBDDManager` is that kernel behind the existing
``DiagramBackend`` seam.  It subclasses :class:`BDDManager` and keeps
its *semantics* bit-for-bit: hash-consing stays global, so diagrams
are canonical and serialized wire bytes (``repro.bdd.io``) are
identical to the reference kernel's — the cross-kernel differential
suites assert exactly that.  What changes is the storage and the
evaluation strategy:

- node fields live in :class:`PagedIntArray` (fixed 4096-entry pages,
  shared LRU byte budget, dirty pages spilled to the spill directory),
- the unique table is a :class:`SpillableUniqueTable` (bounded
  in-memory delta dict over level-major sorted runs on disk),
- ``apply`` / ``exist`` / fused ``and_exist`` / ``replace`` run as
  two-phase streaming sweeps; ``apply_not`` lowers to ``XOR TRUE`` so
  it shares the iterative engine (no recursion anywhere in the hot
  ops — managers thousands of levels deep work),
- every resident structure is byte-accounted against
  ``memory_cap_bytes``; the per-structure budgets (page cache, unique
  delta, request queues, operation caches) spill or evict under
  pressure, so peak resident bytes stay under the cap plus the
  *cut-bounded* slack of the in-flight sweep (the set of resolved
  child results still awaited by shallower parents — Adiar's bound).

The cap is opt-in: ``memory_cap_bytes=None`` (the default) never
spills and behaves like a slightly slower reference kernel, which is
what the 5-way differential chains run.  ``benchmarks/test_ooc.py``
proves the capped regime: a solve under a cap smaller than the
uncapped footprint stays under cap + slack and produces wire bytes
identical to the reference kernel.
"""

from __future__ import annotations

import os
import pickle
import shutil
import struct
import tempfile
import weakref
from array import array
from bisect import bisect_right
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.bdd.manager import (
    FALSE,
    TRUE,
    _OP_AND,
    _OP_DIFF,
    _OP_OR,
    _OP_XOR,
    BDDError,
    BDDManager,
)

__all__ = [
    "OocBDDManager",
    "PagedIntArray",
    "SpillableUniqueTable",
    "SortedRun",
    "merge_runs",
]


# Page geometry: 4096 int64 entries = 32 KiB of payload per page.
_PAGE_SHIFT = 12
_PAGE = 1 << _PAGE_SHIFT
_PAGE_MASK = _PAGE - 1
_PAGE_PAYLOAD = _PAGE * 8
#: Accounted bytes per resident page (payload + array/object overhead).
_PAGE_BYTES = _PAGE_PAYLOAD + 64

# Documented per-entry byte estimates for the accounting.  These are
# CPython-measured ballparks (64-bit): a dict slot plus a 3-int tuple
# key plus an int value is ~100 bytes; queue/plan rows are small
# tuples of ints.  The cap test's slack absorbs the estimation error.
_EST_DICT_ENTRY = 100
_EST_ROW = 120
_EST_FENCE = 120
_EST_RESOLVED = 120
_EST_SET_NODE = 60

#: Unique-table run record: (level, low, high, node) as 4 little-endian
#: int64s, sorted by (level, low, high) — level-major on disk.
_RUN_RECORD = struct.Struct("<4q")
#: One fence key kept in memory per this many run records.
_FENCE_EVERY = 64
#: Sorted runs are k-way merged down to one once this many accumulate.
_MAX_RUNS = 8
#: Tombstone marker for deletions that may shadow older run entries.
_TOMB = -1

_ABSENT = object()


# ----------------------------------------------------------------------
# Paged node arrays
# ----------------------------------------------------------------------


class _PageCache:
    """Shared LRU byte budget across all :class:`PagedIntArray` pages.

    ``budget_bytes=None`` disables eviction (everything stays
    resident); otherwise faulting or allocating a page beyond the
    budget evicts least-recently-stamped pages, writing dirty ones to
    their array's page file first.
    """

    __slots__ = (
        "budget_bytes",
        "arrays",
        "resident_bytes",
        "stamp",
        "faults",
        "evictions",
        "bytes_written",
        "bytes_read",
    )

    def __init__(self, budget_bytes: Optional[int]) -> None:
        self.budget_bytes = budget_bytes
        self.arrays: List["PagedIntArray"] = []
        self.resident_bytes = 0
        self.stamp = 0
        self.faults = 0
        self.evictions = 0
        self.bytes_written = 0
        self.bytes_read = 0

    def tick(self) -> int:
        self.stamp += 1
        return self.stamp

    def ensure_room(self, keep) -> None:
        """Evict oldest pages until under budget, never evicting ``keep``
        (the page the caller is about to read or write)."""
        if self.budget_bytes is None:
            return
        while self.resident_bytes > self.budget_bytes:
            victim_arr = None
            victim_pno = -1
            victim_stamp = None
            for arr in self.arrays:
                for pno, st in arr._stamps.items():
                    if (arr, pno) == keep:
                        continue
                    if victim_stamp is None or st < victim_stamp:
                        victim_arr, victim_pno, victim_stamp = arr, pno, st
            if victim_arr is None:
                return  # nothing evictable (single pinned page)
            victim_arr._evict(victim_pno)
            self.evictions += 1


class PagedIntArray:
    """A list of int64s stored in fixed-size pages behind a shared
    LRU byte budget.

    Supports exactly the surface the reference kernel uses on its
    parallel node lists — ``a[i]``, ``a[i] = v``, ``append``, ``pop``,
    ``len``, truthiness, and forward iteration — so the inherited
    ``mk`` / serializers / debug walks run unchanged.  Pages are
    spilled to ``<path>`` at ``page_index * 32KiB`` offsets; a page is
    only ever faulted back from disk, so an unevicted page never hits
    the filesystem at all (the uncapped regime does zero I/O).
    """

    __slots__ = ("_cache", "_path", "_file", "_pages", "_dirty", "_stamps", "_len")

    def __init__(self, cache: _PageCache, path, init: Sequence[int] = ()) -> None:
        # ``path`` may be a zero-argument callable resolved on first
        # spill, so creating an array costs no filesystem work at all.
        self._cache = cache
        self._path = path
        self._file = None
        self._pages: List[Optional[array]] = []
        self._dirty: set = set()
        self._stamps: Dict[int, int] = {}
        self._len = 0
        cache.arrays.append(self)
        for v in init:
            self.append(v)

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def _open_file(self):
        if self._file is None:
            path = self._path() if callable(self._path) else self._path
            # "r+b" keeps seek+write positional ("a+b" would force
            # every write to the end of the file on POSIX).
            self._file = open(path, "r+b" if os.path.exists(path) else "w+b")
        return self._file

    def _fault(self, pno: int) -> array:
        f = self._open_file()
        f.seek(pno * _PAGE_PAYLOAD)
        data = f.read(_PAGE_PAYLOAD)
        page = array("q")
        page.frombytes(data)
        if len(page) < _PAGE:
            page.extend([0] * (_PAGE - len(page)))
        self._pages[pno] = page
        self._stamps[pno] = self._cache.tick()
        self._cache.resident_bytes += _PAGE_BYTES
        self._cache.faults += 1
        self._cache.bytes_read += _PAGE_PAYLOAD
        self._cache.ensure_room((self, pno))
        return page

    def _evict(self, pno: int) -> None:
        page = self._pages[pno]
        if pno in self._dirty:
            f = self._open_file()
            f.seek(pno * _PAGE_PAYLOAD)
            f.write(page.tobytes())
            self._dirty.discard(pno)
            self._cache.bytes_written += _PAGE_PAYLOAD
        self._pages[pno] = None
        del self._stamps[pno]
        self._cache.resident_bytes -= _PAGE_BYTES

    def __getitem__(self, i: int) -> int:
        pno = i >> _PAGE_SHIFT
        page = self._pages[pno]
        if page is None:
            page = self._fault(pno)
        elif self._cache.budget_bytes is not None:
            self._stamps[pno] = self._cache.tick()
        return page[i & _PAGE_MASK]

    def __setitem__(self, i: int, value: int) -> None:
        pno = i >> _PAGE_SHIFT
        page = self._pages[pno]
        if page is None:
            page = self._fault(pno)
        elif self._cache.budget_bytes is not None:
            self._stamps[pno] = self._cache.tick()
        page[i & _PAGE_MASK] = value
        self._dirty.add(pno)

    def append(self, value: int) -> None:
        i = self._len
        pno = i >> _PAGE_SHIFT
        if pno == len(self._pages):
            page = array("q", bytes(_PAGE_PAYLOAD))
            self._pages.append(page)
            self._stamps[pno] = self._cache.tick()
            self._cache.resident_bytes += _PAGE_BYTES
            self._cache.ensure_room((self, pno))
        else:
            page = self._pages[pno]
            if page is None:
                page = self._fault(pno)
        page[i & _PAGE_MASK] = value
        self._dirty.add(pno)
        self._len = i + 1

    def pop(self) -> int:
        if not self._len:
            raise IndexError("pop from empty PagedIntArray")
        self._len -= 1
        return self[self._len]

    def __iter__(self) -> Iterator[int]:
        remaining = self._len
        for pno in range(len(self._pages)):
            if not remaining:
                return
            page = self._pages[pno]
            if page is None:
                # Transient read: iteration must not thrash the budget.
                f = self._open_file()
                f.seek(pno * _PAGE_PAYLOAD)
                data = f.read(_PAGE_PAYLOAD)
                page = array("q")
                page.frombytes(data)
                if len(page) < _PAGE:
                    page.extend([0] * (_PAGE - len(page)))
                self._cache.bytes_read += _PAGE_PAYLOAD
            n = min(remaining, _PAGE)
            if n == _PAGE:
                yield from page
            else:
                yield from page[:n]
            remaining -= n

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


# ----------------------------------------------------------------------
# Level-major sorted runs (the on-disk unique table)
# ----------------------------------------------------------------------


class SortedRun:
    """One immutable sorted run of ``(level, low, high) -> node``
    records on disk, with an in-memory fence-pointer index (one key per
    :data:`_FENCE_EVERY` records) so a point probe costs one seek plus
    one 2 KiB block read."""

    __slots__ = ("path", "count", "_fences", "_file")

    def __init__(self, path: str, items) -> None:
        """Write ``items`` (an iterable of ``(key, node)`` in sorted key
        order) to ``path``."""
        self.path = path
        self._fences: List[Tuple[int, int, int]] = []
        pack = _RUN_RECORD.pack
        count = 0
        with open(path, "wb") as f:
            buf = bytearray()
            for key, node in items:
                if count % _FENCE_EVERY == 0:
                    self._fences.append(key)
                buf += pack(key[0], key[1], key[2], node)
                count += 1
                if len(buf) >= 1 << 18:
                    f.write(buf)
                    buf.clear()
            if buf:
                f.write(buf)
        self.count = count
        self._file = None

    def _open(self):
        if self._file is None:
            self._file = open(self.path, "rb")
        return self._file

    def get(self, key: Tuple[int, int, int]) -> Optional[int]:
        """The stored node for ``key`` (may be the tombstone), or None."""
        if not self._fences or key < self._fences[0]:
            return None
        block = bisect_right(self._fences, key) - 1
        f = self._open()
        f.seek(block * _FENCE_EVERY * _RUN_RECORD.size)
        data = f.read(_FENCE_EVERY * _RUN_RECORD.size)
        lo, hi = 0, len(data) // _RUN_RECORD.size
        while lo < hi:
            mid = (lo + hi) // 2
            l, lw, h, node = _RUN_RECORD.unpack_from(data, mid * _RUN_RECORD.size)
            k = (l, lw, h)
            if k == key:
                return node
            if k < key:
                lo = mid + 1
            else:
                hi = mid
        return None

    def __iter__(self) -> Iterator[Tuple[Tuple[int, int, int], int]]:
        with open(self.path, "rb") as f:
            while True:
                data = f.read(_RUN_RECORD.size * 4096)
                if not data:
                    return
                for off in range(0, len(data), _RUN_RECORD.size):
                    l, lw, h, node = _RUN_RECORD.unpack_from(data, off)
                    yield (l, lw, h), node

    def fence_bytes(self) -> int:
        return len(self._fences) * _EST_FENCE

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def unlink(self) -> None:
        self.close()
        try:
            os.unlink(self.path)
        except OSError:
            pass


def merge_runs(runs: Sequence[SortedRun], path: str) -> SortedRun:
    """K-way merge sorted runs into one, newest-wins, tombstones dropped.

    ``runs`` are ordered oldest first (the order the table spilled
    them); for equal keys the record from the newest run shadows the
    rest, and a surviving tombstone erases the key entirely (nothing
    older can resurrect it once the merge is total).  Streaming: only
    one read buffer per run is resident at a time.
    """
    import heapq

    def merged():
        # Heap entries sort by (key, -run_index): for equal keys the
        # newest run pops first and is authoritative.
        heap = []
        for prio, run in enumerate(runs):
            it = iter(run)
            first = next(it, None)
            if first is not None:
                heap.append((first[0], -prio, first[1], it))
        heapq.heapify(heap)
        while heap:
            key, negprio, node, it = heapq.heappop(heap)
            # Drain every shadowed (older) record for the same key.
            while heap and heap[0][0] == key:
                _, dup_neg, _, dup_it = heapq.heappop(heap)
                nxt = next(dup_it, None)
                if nxt is not None:
                    heapq.heappush(heap, (nxt[0], dup_neg, nxt[1], dup_it))
            nxt = next(it, None)
            if nxt is not None:
                heapq.heappush(heap, (nxt[0], negprio, nxt[1], it))
            if node != _TOMB:
                yield key, node

    return SortedRun(path, merged())


class SpillableUniqueTable:
    """The ``(level, low, high) -> node`` unique table, spillable.

    A bounded in-memory *delta* dict absorbs all writes; when it
    outgrows its byte budget it is sorted and flushed as a new
    :class:`SortedRun`.  Lookups probe the delta, then runs newest
    first.  Deletions write tombstones (a deleted key may still exist
    in an older run).  Runs are k-way merged once :data:`_MAX_RUNS`
    accumulate.  ``len`` is exact (maintained by presence checks on
    every mutation) because ``check_integrity`` compares it against
    the live node count.
    """

    __slots__ = (
        "mgr",
        "delta",
        "runs",
        "count",
        "_last_miss",
        "flushes",
        "merges",
        "disk_probes",
    )

    def __init__(self, mgr: "OocBDDManager") -> None:
        self.mgr = mgr
        self.delta: Dict[Tuple[int, int, int], int] = {}
        self.runs: List[SortedRun] = []
        self.count = 0
        # mk() always probes before inserting; remembering the probed
        # key lets the insert skip a second disk probe.
        self._last_miss = None
        self.flushes = 0
        self.merges = 0
        self.disk_probes = 0

    def __len__(self) -> int:
        return self.count

    def _probe(self, key) -> object:
        """Delta-then-runs probe; returns the node, or _ABSENT."""
        v = self.delta.get(key, _ABSENT)
        if v is not _ABSENT:
            return _ABSENT if v == _TOMB else v
        for run in reversed(self.runs):
            self.disk_probes += 1
            node = run.get(key)
            if node is not None:
                return _ABSENT if node == _TOMB else node
        return _ABSENT

    def get(self, key, default=None):
        v = self._probe(key)
        if v is _ABSENT:
            self._last_miss = key
            return default
        self._last_miss = None
        return v

    def __contains__(self, key) -> bool:
        return self._probe(key) is not _ABSENT

    def __setitem__(self, key, node: int) -> None:
        if key == self._last_miss:
            prior = _ABSENT
            self._last_miss = None
        else:
            prior = self._probe(key)
        if prior is _ABSENT:
            self.count += 1
        self.delta[key] = node
        budget = self.mgr._unique_budget
        if budget is not None and len(self.delta) * _EST_DICT_ENTRY > budget:
            self.flush()

    def __delitem__(self, key) -> None:
        prior = self._probe(key)
        if prior is _ABSENT:
            raise KeyError(key)
        self.count -= 1
        self._last_miss = None
        if self.runs:
            self.delta[key] = _TOMB
        else:
            self.delta.pop(key, None)

    def flush(self) -> None:
        """Spill the delta as a new level-major sorted run."""
        if not self.delta:
            return
        path = self.mgr._spill_path(f"unique-run-{self.flushes}.bin")
        run = SortedRun(path, sorted(self.delta.items()))
        self.runs.append(run)
        self.delta.clear()
        self.flushes += 1
        self.mgr._ooc["unique_flushes"] += 1
        self.mgr._ooc["spill_bytes_written"] += run.count * _RUN_RECORD.size
        if len(self.runs) >= _MAX_RUNS:
            self.merge()
        self.mgr._note_resident()

    def merge(self) -> None:
        if len(self.runs) < 2:
            return
        path = self.mgr._spill_path(f"unique-merge-{self.merges}.bin")
        merged = merge_runs(self.runs, path)
        for run in self.runs:
            run.unlink()
        self.runs = [merged]
        self.merges += 1
        self.mgr._ooc["unique_merges"] += 1

    def run_entries(self) -> int:
        return sum(r.count for r in self.runs)

    def resident_bytes(self) -> int:
        return len(self.delta) * _EST_DICT_ENTRY + sum(
            r.fence_bytes() for r in self.runs
        )

    def close(self) -> None:
        for run in self.runs:
            run.unlink()
        self.runs = []


# ----------------------------------------------------------------------
# Level index without per-level node sets
# ----------------------------------------------------------------------


class _CountSlot:
    """Stand-in for one level's node set: counts only.

    The hot path (``mk``, ``gc``) needs just ``add`` / ``discard`` /
    ``len``; real membership sets are materialized only for the
    duration of a reordering pass (see
    :meth:`OocBDDManager._materialized_levels`), because adjacent-level
    swaps genuinely iterate level populations.
    """

    __slots__ = ("owner", "level", "count")

    def __init__(self, owner: "OocBDDManager", level: int) -> None:
        self.owner = owner
        self.level = level
        self.count = 0

    def add(self, node: int) -> None:
        self.count += 1

    def discard(self, node: int) -> None:
        self.count -= 1

    def __len__(self) -> int:
        return self.count

    def __contains__(self, node: int) -> bool:
        m = self.owner
        return node > TRUE and m._low[node] != -1 and m._level[node] == self.level

    def __iter__(self) -> Iterator[int]:
        m = self.owner
        lvl = self.level
        for node, (l, lo) in enumerate(zip(m._level, m._low)):
            if node > TRUE and l == lvl and lo != -1:
                yield node


class _LevelIndex:
    """``manager._at_level`` replacement: count slots normally, real
    sets while a reordering pass is live."""

    __slots__ = ("owner", "slots", "sets")

    def __init__(self, owner: "OocBDDManager", num_levels: int) -> None:
        self.owner = owner
        self.slots = [_CountSlot(owner, i) for i in range(num_levels)]
        self.sets: Optional[List[set]] = None

    def __getitem__(self, level: int):
        if self.sets is not None:
            return self.sets[level]
        return self.slots[level]

    def __setitem__(self, level: int, value) -> None:
        # Only the swap rewrite assigns whole level populations, and it
        # only runs inside a materialized reorder pass.
        if self.sets is None:
            raise BDDError("level index assignment outside a reorder pass")
        self.sets[level] = value

    def __iter__(self):
        return iter(self.sets if self.sets is not None else self.slots)

    def __len__(self) -> int:
        return len(self.slots)

    def extend(self, iterable) -> None:
        # add_vars() passes fresh set()s; substitute our slot kind.
        for _ in iterable:
            level = len(self.slots)
            self.slots.append(_CountSlot(self.owner, level))
            if self.sets is not None:
                self.sets.append(set())

    def materialize(self) -> None:
        m = self.owner
        sets: List[set] = [set() for _ in range(len(self.slots))]
        for node, (lvl, lo) in enumerate(zip(m._level, m._low)):
            if node > TRUE and lo != -1:
                sets[lvl].add(node)
        self.sets = sets

    def release(self) -> None:
        assert self.sets is not None
        for slot, s in zip(self.slots, self.sets):
            slot.count = len(s)
        self.sets = None


# ----------------------------------------------------------------------
# Spillable level-bucketed sweep queues
# ----------------------------------------------------------------------


class _SweepStore:
    """Rows bucketed by level, coldest buckets spillable to one chunk
    file in the spill directory.

    This is the "request priority queue" of the sweeps: the downward
    phase pushes child requests at strictly deeper levels and pops
    buckets in ascending level order; the upward phase pushes plan
    rows and pops them in descending order.  Either way a bucket is
    written completely before it is read, so spilled chunks are only
    ever appended and then streamed back once.
    """

    __slots__ = ("mgr", "buckets", "rows_in_mem", "file", "chunks", "path")

    def __init__(self, mgr: "OocBDDManager") -> None:
        self.mgr = mgr
        self.buckets: Dict[int, list] = {}
        self.rows_in_mem = 0
        self.file = None
        self.chunks: Dict[int, List[Tuple[int, int]]] = {}
        self.path = None
        mgr._active_stores.append(self)

    def push(self, level: int, row) -> None:
        bucket = self.buckets.get(level)
        if bucket is None:
            bucket = self.buckets[level] = []
        bucket.append(row)
        self.rows_in_mem += 1
        budget = self.mgr._queue_budget
        if budget is not None and self.rows_in_mem * _EST_ROW > budget:
            self._spill()

    def extend(self, level: int, rows: list) -> None:
        bucket = self.buckets.get(level)
        if bucket is None:
            self.buckets[level] = list(rows)
        else:
            bucket.extend(rows)
        self.rows_in_mem += len(rows)
        budget = self.mgr._queue_budget
        if budget is not None and self.rows_in_mem * _EST_ROW > budget:
            self._spill()

    def _spill(self) -> None:
        if self.file is None:
            self.path = self.mgr._spill_path(
                f"sweep-{id(self):x}-{self.mgr._ooc['sweeps']}.chunks"
            )
            self.file = open(self.path, "w+b")
        target = self.rows_in_mem // 2
        # Spill the fattest buckets first: fewest chunks per spilled row.
        for level, rows in sorted(
            self.buckets.items(), key=lambda kv: len(kv[1]), reverse=True
        ):
            if self.rows_in_mem <= target:
                break
            if not rows:
                continue
            data = pickle.dumps(rows, protocol=pickle.HIGHEST_PROTOCOL)
            self.file.seek(0, 2)
            off = self.file.tell()
            self.file.write(data)
            self.chunks.setdefault(level, []).append((off, len(data)))
            self.rows_in_mem -= len(rows)
            self.mgr._ooc["queue_rows_spilled"] += len(rows)
            self.mgr._ooc["spill_bytes_written"] += len(data)
            self.buckets[level] = []

    def levels(self) -> List[int]:
        out = {lvl for lvl, rows in self.buckets.items() if rows}
        out.update(self.chunks)
        return sorted(out)

    def pop_level(self, level: int) -> list:
        rows = self.buckets.pop(level, [])
        self.rows_in_mem -= len(rows)
        for off, nbytes in self.chunks.pop(level, ()):
            self.file.seek(off)
            rows.extend(pickle.loads(self.file.read(nbytes)))
            self.mgr._ooc["spill_bytes_read"] += nbytes
        return rows

    def close(self) -> None:
        if self.file is not None:
            self.file.close()
            try:
                os.unlink(self.path)
            except OSError:
                pass
            self.file = None
        self.buckets.clear()
        self.chunks.clear()
        self.rows_in_mem = 0
        try:
            self.mgr._active_stores.remove(self)
        except ValueError:
            pass


# ----------------------------------------------------------------------
# The kernel
# ----------------------------------------------------------------------

_OOC_COUNTERS = (
    "sweeps",
    "queue_rows_spilled",
    "unique_flushes",
    "unique_merges",
    "spill_bytes_written",
    "spill_bytes_read",
)


class OocBDDManager(BDDManager):
    """Out-of-core BDD kernel: disk-backed node store, streaming sweeps.

    Parameters (beyond :class:`BDDManager`'s):

    memory_cap_bytes:
        Total byte budget for resident kernel state, or ``None``
        (default; also read from ``JEDD_OOC_CAP_BYTES``) for the
        uncapped regime that never touches disk.  The cap is divided
        into per-structure budgets: 50% page cache, 20% unique-table
        delta, 12% operation caches, the rest request queues.
    spill_dir:
        Directory for page files / sorted runs / queue chunks.  By
        default (or via ``JEDD_OOC_SPILL_DIR``) a private temporary
        directory is created lazily on first spill and removed when
        the manager is garbage collected.
    """

    telemetry_name = "bdd"

    def __init__(
        self,
        num_vars: int,
        gc_threshold: int = 1 << 18,
        cache_limit: Optional[int] = None,
        memory_cap_bytes: Optional[int] = None,
        spill_dir: Optional[str] = None,
    ) -> None:
        super().__init__(num_vars, gc_threshold, cache_limit)
        if memory_cap_bytes is None:
            env = os.environ.get("JEDD_OOC_CAP_BYTES")
            if env:
                memory_cap_bytes = int(env)
        if memory_cap_bytes is not None and memory_cap_bytes <= 0:
            raise BDDError("memory_cap_bytes must be positive")
        self.memory_cap_bytes = memory_cap_bytes
        self._spill_dir = spill_dir or os.environ.get("JEDD_OOC_SPILL_DIR")
        self._spill_dir_ready = False
        self._finalizer = None
        self._spill_serial = 0
        cap = memory_cap_bytes
        self._page_cache = _PageCache(cap and max(int(cap * 0.50), 4 * _PAGE_BYTES))
        self._unique_budget = cap and max(int(cap * 0.20), 64 * _EST_DICT_ENTRY)
        self._queue_budget = cap and max(int(cap * 0.06), 64 * _EST_ROW)
        if cap is not None and cache_limit is None:
            # Six operation caches share ~12% of the cap.
            self.cache_limit = max(256, int(cap * 0.12) // (6 * _EST_DICT_ENTRY))
        # Replace the base kernel's in-memory storage with the
        # spillable equivalents (terminal entries carried over).
        self._level = PagedIntArray(
            self._page_cache, self._lazy_path("level"), self._level
        )
        self._low = PagedIntArray(self._page_cache, self._lazy_path("low"), self._low)
        self._high = PagedIntArray(
            self._page_cache, self._lazy_path("high"), self._high
        )
        self._refs = PagedIntArray(
            self._page_cache, self._lazy_path("refs"), self._refs
        )
        self._parents = PagedIntArray(
            self._page_cache, self._lazy_path("parents"), self._parents
        )
        self._free = PagedIntArray(
            self._page_cache, self._lazy_path("free"), self._free
        )
        self._unique = SpillableUniqueTable(self)
        self._at_level = _LevelIndex(self, num_vars)
        self._active_stores: List[_SweepStore] = []
        self._active_resolved: List[dict] = []
        self._ooc: Dict[str, int] = {k: 0 for k in _OOC_COUNTERS}
        self._peak_resident = 0
        self._mk_tick = 0
        self._sweep_trace: Optional[List[Tuple[str, int]]] = None
        self._note_resident()

    # -- spill directory ------------------------------------------------

    def _lazy_path(self, name: str):
        """Path factory for a page file; resolving it creates the spill
        directory, but PagedIntArray only resolves it when a page is
        actually spilled — an uncapped manager does zero filesystem
        work for its whole lifetime."""
        return lambda: os.path.join(self._spill_dir_path(), f"{name}.pages")

    def _spill_dir_path(self, create: bool = True) -> str:
        if self._spill_dir is None:
            self._spill_dir = tempfile.mkdtemp(prefix="jedd-ooc-")
            self._spill_dir_ready = True
            self._finalizer = weakref.finalize(
                self, shutil.rmtree, self._spill_dir, True
            )
        if create and not self._spill_dir_ready:
            os.makedirs(self._spill_dir, exist_ok=True)
            self._spill_dir_ready = True
        return self._spill_dir

    def _spill_path(self, name: str) -> str:
        self._spill_serial += 1
        return os.path.join(
            self._spill_dir_path(), f"{self._spill_serial:06d}-{name}"
        )

    @property
    def spill_dir(self) -> str:
        """The directory spill files land in (created on demand)."""
        return self._spill_dir_path()

    def close(self) -> None:
        """Release file handles and remove owned spill files."""
        for arr in (
            self._level,
            self._low,
            self._high,
            self._refs,
            self._parents,
            self._free,
        ):
            arr.close()
        self._unique.close()
        for store in list(self._active_stores):
            store.close()
        if self._finalizer is not None:
            self._finalizer()

    # -- accounting -----------------------------------------------------

    def resident_bytes(self) -> int:
        """Accounted bytes of every resident kernel structure.

        This is the quantity the cap governs: resident node-array
        pages, the unique-table delta and its run fences, the
        operation caches, in-flight sweep queues, and the upward
        phase's resolved-results cut.
        """
        total = self._page_cache.resident_bytes
        total += self._unique.resident_bytes()
        total += sum(self.cache_stats().values()) * _EST_DICT_ENTRY
        for store in self._active_stores:
            total += store.rows_in_mem * _EST_ROW
        for resolved in self._active_resolved:
            total += len(resolved) * _EST_RESOLVED
        if self._at_level.sets is not None:
            total += sum(len(s) for s in self._at_level.sets) * _EST_SET_NODE
        return total

    @property
    def peak_resident_bytes(self) -> int:
        return self._peak_resident

    def _note_resident(self) -> None:
        r = self.resident_bytes()
        if r > self._peak_resident:
            self._peak_resident = r

    def ooc_profile(self) -> Dict[str, int]:
        """Spill/sweep telemetry (exported as ``ooc.*`` sampler gauges)."""
        out = dict(self._ooc)
        out["cap_bytes"] = self.memory_cap_bytes or 0
        out["resident_bytes"] = self.resident_bytes()
        out["peak_resident_bytes"] = self._peak_resident
        out["pages_resident"] = self._page_cache.resident_bytes // _PAGE_BYTES
        out["pages_faulted"] = self._page_cache.faults
        out["pages_evicted"] = self._page_cache.evictions
        out["page_bytes_written"] = self._page_cache.bytes_written
        out["page_bytes_read"] = self._page_cache.bytes_read
        out["unique_delta_entries"] = len(self._unique.delta)
        out["unique_runs"] = len(self._unique.runs)
        out["unique_run_entries"] = self._unique.run_entries()
        out["unique_disk_probes"] = self._unique.disk_probes
        return out

    def reset_ooc_profile(self) -> None:
        for k in _OOC_COUNTERS:
            self._ooc[k] = 0
        self._page_cache.faults = 0
        self._page_cache.evictions = 0
        self._page_cache.bytes_written = 0
        self._page_cache.bytes_read = 0
        self._unique.disk_probes = 0
        self._peak_resident = self.resident_bytes()

    # -- node construction ----------------------------------------------

    def mk(self, level: int, low: int, high: int) -> int:
        node = super().mk(level, low, high)
        self._mk_tick += 1
        if not self._mk_tick & 0x3FF:
            self._note_resident()
        return node

    # -- sweep plumbing -------------------------------------------------

    @contextmanager
    def _trace(self):
        """Record (phase, level) transitions of every sweep — the
        sweep-order property tests assert downward levels ascend and
        upward levels descend."""
        self._sweep_trace = []
        try:
            yield self._sweep_trace
        finally:
            self._sweep_trace = None

    def _mark(self, phase: str, level: int) -> None:
        if self._sweep_trace is not None:
            self._sweep_trace.append((phase, level))

    @staticmethod
    def _apply_shortcut(op: int, a: int, b: int) -> Optional[int]:
        # Byte-for-byte the reference kernel's terminal short-cuts.
        if op == _OP_AND:
            if a == FALSE or b == FALSE:
                return FALSE
            if a == TRUE:
                return b
            if b == TRUE:
                return a
            if a == b:
                return a
        elif op == _OP_OR:
            if a == TRUE or b == TRUE:
                return TRUE
            if a == FALSE:
                return b
            if b == FALSE:
                return a
            if a == b:
                return a
        elif op == _OP_DIFF:
            if a == FALSE or b == TRUE or a == b:
                return FALSE
            if b == FALSE:
                return a
        elif op == _OP_XOR:
            if a == b:
                return FALSE
            if a == FALSE:
                return b
            if b == FALSE:
                return a
        return None

    @staticmethod
    def _take(resolved: dict, spec) -> int:
        if spec[0]:  # terminal/cached spec: (1, node)
            return spec[1]
        key = spec[1]
        entry = resolved[key]
        entry[1] -= 1
        if entry[1] == 0:
            del resolved[key]
        return entry[0]

    # -- binary apply ---------------------------------------------------

    def _apply(self, op: int, a: int, b: int) -> int:
        r = self._apply_shortcut(op, a, b)
        if r is not None:
            return r
        if op in (_OP_AND, _OP_OR, _OP_XOR) and a > b:
            a, b = b, a
        cached = self._apply_cache.get((op, a, b))
        if cached is not None:
            self.stats.op_hits[op] += 1
            return cached
        return self._sweep_binary(op, a, b)

    def _binary_child_spec(self, op: int, x: int, y: int, pending: _SweepStore):
        r = self._apply_shortcut(op, x, y)
        if r is not None:
            return (1, r)
        if op in (_OP_AND, _OP_OR, _OP_XOR) and x > y:
            x, y = y, x
        r = self._apply_cache.get((op, x, y))
        if r is not None:
            self.stats.op_hits[op] += 1
            return (1, r)
        clv = min(self._level[x], self._level[y])
        pending.push(clv, (x, y))
        return (0, (clv, x, y))

    def _sweep_binary(self, op: int, a: int, b: int) -> int:
        self._ooc["sweeps"] += 1
        pending = _SweepStore(self)
        plan = _SweepStore(self)
        resolved: dict = {}
        self._active_resolved.append(resolved)
        try:
            root_level = min(self._level[a], self._level[b])
            pending.push(root_level, (a, b))
            while True:
                levels = pending.levels()
                if not levels:
                    break
                level = levels[0]
                self._mark("down", level)
                agg: Dict[Tuple[int, int], int] = {}
                for key in pending.pop_level(level):
                    agg[key] = agg.get(key, 0) + 1
                rows = []
                lv_arr, lo_arr, hi_arr = self._level, self._low, self._high
                for (x, y), count in agg.items():
                    self.stats.op_misses[op] += 1
                    if lv_arr[x] == level:
                        x0, x1 = lo_arr[x], hi_arr[x]
                    else:
                        x0 = x1 = x
                    if lv_arr[y] == level:
                        y0, y1 = lo_arr[y], hi_arr[y]
                    else:
                        y0 = y1 = y
                    rows.append(
                        (
                            x,
                            y,
                            count,
                            self._binary_child_spec(op, x0, y0, pending),
                            self._binary_child_spec(op, x1, y1, pending),
                        )
                    )
                plan.extend(level, rows)
                self._note_resident()
            for level in reversed(plan.levels()):
                self._mark("up", level)
                for x, y, count, lo_spec, hi_spec in plan.pop_level(level):
                    lo = self._take(resolved, lo_spec)
                    hi = self._take(resolved, hi_spec)
                    node = self.mk(level, lo, hi)
                    self._cache_store(self._apply_cache, (op, x, y), node)
                    resolved[(level, x, y)] = [node, count]
                self._note_resident()
            return resolved[(root_level, a, b)][0]
        finally:
            self._active_resolved.remove(resolved)
            pending.close()
            plan.close()

    def apply_not(self, a: int) -> int:
        # NOT a == a XOR TRUE: sharing the streaming binary engine
        # keeps complement iterative too (the reference recursion is
        # depth-bounded by the variable count, which an out-of-core
        # table can exceed by orders of magnitude).
        if a == FALSE:
            return TRUE
        if a == TRUE:
            return FALSE
        cached = self._not_cache.get(a)
        if cached is not None:
            self.stats.not_hits += 1
            return cached
        self.stats.not_misses += 1
        result = self._apply(_OP_XOR, a, TRUE)
        return self._cache_store(self._not_cache, a, result)

    # -- exist ----------------------------------------------------------

    def _exist(self, a: int, levels: Tuple[int, ...]) -> int:
        spec = self._exist_child_spec(a, levels, None)
        if spec[0]:
            return spec[1]
        return self._sweep_exist(spec[1])

    def _exist_child_spec(
        self, c: int, levels: Tuple[int, ...], pending: Optional[_SweepStore]
    ):
        if c <= TRUE:
            return (1, c)
        lc = self._level[c]
        idx = 0
        while idx < len(levels) and levels[idx] < lc:
            idx += 1
        levels = levels[idx:]
        if not levels:
            return (1, c)
        cached = self._exist_cache.get((c, levels))
        if cached is not None:
            self.stats.exist_hits += 1
            return (1, cached)
        if pending is not None:
            pending.push(lc, (c, levels))
        return (0, (lc, c, levels))

    def _sweep_exist(self, root_key) -> int:
        self._ooc["sweeps"] += 1
        pending = _SweepStore(self)
        plan = _SweepStore(self)
        resolved: dict = {}
        self._active_resolved.append(resolved)
        try:
            root_level, root_a, root_lv = root_key
            pending.push(root_level, (root_a, root_lv))
            while True:
                present = pending.levels()
                if not present:
                    break
                level = present[0]
                self._mark("down", level)
                agg: Dict[Tuple[int, Tuple[int, ...]], int] = {}
                for key in pending.pop_level(level):
                    agg[key] = agg.get(key, 0) + 1
                rows = []
                for (node, lv), count in agg.items():
                    self.stats.exist_misses += 1
                    rows.append(
                        (
                            node,
                            lv,
                            count,
                            level == lv[0],
                            self._exist_child_spec(self._low[node], lv, pending),
                            self._exist_child_spec(self._high[node], lv, pending),
                        )
                    )
                plan.extend(level, rows)
                self._note_resident()
            for level in reversed(plan.levels()):
                self._mark("up", level)
                for node, lv, count, quantified, lo_spec, hi_spec in plan.pop_level(
                    level
                ):
                    lo = self._take(resolved, lo_spec)
                    hi = self._take(resolved, hi_spec)
                    if quantified:
                        result = self.apply_or(lo, hi)
                    else:
                        result = self.mk(level, lo, hi)
                    self._cache_store(self._exist_cache, (node, lv), result)
                    resolved[(level, node, lv)] = [result, count]
                self._note_resident()
            return resolved[root_key][0]
        finally:
            self._active_resolved.remove(resolved)
            pending.close()
            plan.close()

    # -- fused and_exist ------------------------------------------------

    def _and_exist(self, a: int, b: int, levels: Tuple[int, ...]) -> int:
        spec = self._and_exist_child_spec(a, b, levels, None)
        if spec[0]:
            return spec[1]
        return self._sweep_and_exist(spec[1])

    def _and_exist_child_spec(
        self, a: int, b: int, levels: Tuple[int, ...], pending: Optional[_SweepStore]
    ):
        if a == FALSE or b == FALSE:
            return (1, FALSE)
        if a == TRUE and b == TRUE:
            return (1, TRUE)
        top = min(self._level[a], self._level[b])
        idx = 0
        while idx < len(levels) and levels[idx] < top:
            idx += 1
        levels = levels[idx:]
        if not levels:
            return (1, self._apply(_OP_AND, a, b))
        if a > b:  # AND is commutative
            a, b = b, a
        cached = self._and_exist_cache.get((a, b, levels))
        if cached is not None:
            self.stats.and_exist_hits += 1
            return (1, cached)
        if pending is not None:
            pending.push(top, (a, b, levels))
        return (0, (top, a, b, levels))

    def _sweep_and_exist(self, root_key) -> int:
        self._ooc["sweeps"] += 1
        pending = _SweepStore(self)
        plan = _SweepStore(self)
        resolved: dict = {}
        self._active_resolved.append(resolved)
        try:
            root_level, root_a, root_b, root_lv = root_key
            pending.push(root_level, (root_a, root_b, root_lv))
            while True:
                present = pending.levels()
                if not present:
                    break
                level = present[0]
                self._mark("down", level)
                agg: Dict[Tuple[int, int, Tuple[int, ...]], int] = {}
                for key in pending.pop_level(level):
                    agg[key] = agg.get(key, 0) + 1
                rows = []
                lv_arr, lo_arr, hi_arr = self._level, self._low, self._high
                for (a, b, lv), count in agg.items():
                    self.stats.and_exist_misses += 1
                    if lv_arr[a] == level:
                        a0, a1 = lo_arr[a], hi_arr[a]
                    else:
                        a0 = a1 = a
                    if lv_arr[b] == level:
                        b0, b1 = lo_arr[b], hi_arr[b]
                    else:
                        b0 = b1 = b
                    rows.append(
                        (
                            a,
                            b,
                            lv,
                            count,
                            level == lv[0],
                            self._and_exist_child_spec(a0, b0, lv, pending),
                            self._and_exist_child_spec(a1, b1, lv, pending),
                        )
                    )
                plan.extend(level, rows)
                self._note_resident()
            for level in reversed(plan.levels()):
                self._mark("up", level)
                for a, b, lv, count, quantified, lo_spec, hi_spec in plan.pop_level(
                    level
                ):
                    lo = self._take(resolved, lo_spec)
                    hi = self._take(resolved, hi_spec)
                    if quantified:
                        result = TRUE if lo == TRUE else self.apply_or(lo, hi)
                    else:
                        result = self.mk(level, lo, hi)
                    self._cache_store(self._and_exist_cache, (a, b, lv), result)
                    resolved[(level, a, b, lv)] = [result, count]
                self._note_resident()
            return resolved[root_key][0]
        finally:
            self._active_resolved.remove(resolved)
            pending.close()
            plan.close()

    # -- replace --------------------------------------------------------

    def replace(self, a: int, permutation: Dict[int, int]) -> int:
        perm_vars = {k: v for k, v in permutation.items() if k != v}
        if not perm_vars:
            return a
        if len(set(perm_vars.values())) != len(perm_vars):
            raise BDDError("replace permutation must be injective")
        perm: Dict[int, int] = {}
        for old, new in perm_vars.items():
            self._check_var(old)
            self._check_var(new)
            perm[self._level_at_var[old]] = self._level_at_var[new]
        key_perm = tuple(sorted(perm.items()))
        if self.is_terminal(a):
            return a
        cached = self._replace_cache.get((a, key_perm))
        if cached is not None:
            self.stats.replace_hits += 1
            return cached
        self._ooc["sweeps"] += 1
        pending = _SweepStore(self)
        plan = _SweepStore(self)
        resolved: dict = {}
        self._active_resolved.append(resolved)
        try:
            root_level = self._level[a]
            pending.push(root_level, a)
            while True:
                present = pending.levels()
                if not present:
                    break
                level = present[0]
                self._mark("down", level)
                agg: Dict[int, int] = {}
                for node in pending.pop_level(level):
                    agg[node] = agg.get(node, 0) + 1
                rows = []
                for node, count in agg.items():
                    self.stats.replace_misses += 1
                    rows.append(
                        (
                            node,
                            count,
                            self._replace_child_spec(
                                self._low[node], key_perm, pending
                            ),
                            self._replace_child_spec(
                                self._high[node], key_perm, pending
                            ),
                        )
                    )
                plan.extend(level, rows)
                self._note_resident()
            for level in reversed(plan.levels()):
                self._mark("up", level)
                new_level = perm.get(level, level)
                for node, count, lo_spec, hi_spec in plan.pop_level(level):
                    lo = self._take(resolved, lo_spec)
                    hi = self._take(resolved, hi_spec)
                    # Recompose through ITE on the *target* variable so
                    # order-changing permutations stay correct — the
                    # same lowering as the reference kernel.
                    result = self.ite(self._var_bdd_at(new_level), hi, lo)
                    self._cache_store(
                        self._replace_cache, (node, key_perm), result
                    )
                    resolved[(level, node)] = [result, count]
                self._note_resident()
            return resolved[(root_level, a)][0]
        finally:
            self._active_resolved.remove(resolved)
            pending.close()
            plan.close()

    def _replace_child_spec(self, c: int, key_perm, pending: _SweepStore):
        if c <= TRUE:
            return (1, c)
        cached = self._replace_cache.get((c, key_perm))
        if cached is not None:
            self.stats.replace_hits += 1
            return (1, cached)
        lc = self._level[c]
        pending.push(lc, c)
        return (0, (lc, c))

    # -- reordering -----------------------------------------------------

    @contextmanager
    def _materialized_levels(self):
        if self._at_level.sets is not None:
            yield  # re-entrant: already materialized by an outer pass
            return
        self._at_level.materialize()
        self._note_resident()
        try:
            yield
        finally:
            self._at_level.release()

    def swap_levels(self, level: int) -> int:
        with self._materialized_levels():
            return super().swap_levels(level)

    def set_order(self, order: Sequence[int]) -> None:
        with self._materialized_levels():
            super().set_order(order)

    def reorder(self, *args, **kwargs):
        with self._materialized_levels():
            return super().reorder(*args, **kwargs)

    def _swap_adjacent(self, i: int) -> None:
        if self._at_level.sets is None:
            # Direct call outside a reordering pass (tests do this):
            # materialize transiently for the single swap.
            with self._materialized_levels():
                super()._swap_adjacent(i)
            return
        super()._swap_adjacent(i)

    # -- garbage collection ---------------------------------------------

    def gc(self) -> int:
        """Mark-and-sweep in level order with a byte-per-node mark map.

        The base implementation allocates a Python ``bool`` list and a
        recursion stack proportional to the whole table; here marking
        runs as one more downward level sweep (children are strictly
        deeper, so level-bucketed marking visits every node once) over
        the paged arrays, with a ``bytearray`` mark map — 1 byte per
        slot instead of an 8-byte pointer.
        """
        from time import perf_counter

        start = perf_counter()
        self.stats.note_live(self.num_nodes)
        size = len(self._level)
        marked = bytearray(size)
        marked[FALSE] = marked[TRUE] = 1
        num_vars = self._num_vars
        buckets: List[array] = [array("q") for _ in range(num_vars)]
        level_arr, low_arr, high_arr = self._level, self._low, self._high
        for node, (r, lvl) in enumerate(zip(self._refs, level_arr)):
            if r > 0 and node > TRUE and not marked[node]:
                marked[node] = 1
                buckets[lvl].append(node)
        for lvl in range(num_vars):
            for node in buckets[lvl]:
                for child in (low_arr[node], high_arr[node]):
                    if child > TRUE and not marked[child]:
                        marked[child] = 1
                        buckets[level_arr[child]].append(child)
            buckets[lvl] = array("q")
        freed = 0
        for node in range(2, size):
            if marked[node]:
                continue
            lo = low_arr[node]
            if lo == -1:
                continue  # already on the free list
            hi = high_arr[node]
            lvl = level_arr[node]
            key = (lvl, lo, hi)
            if self._unique.get(key) == node:
                del self._unique[key]
            self._at_level[lvl].discard(node)
            for child in (lo, hi):
                if child > TRUE:
                    self._parents[child] -= 1
            low_arr[node] = -1
            high_arr[node] = -1
            self._parents[node] = 0
            self._free.append(node)
            freed += 1
        self._clear_caches()
        self.gc_count += 1
        seconds = perf_counter() - start
        stats = self.stats
        stats.gc_runs += 1
        stats.gc_seconds += seconds
        stats.last_gc_seconds = seconds
        stats.gc_reclaimed += freed
        self._note_resident()
        for listener in self.gc_listeners:
            listener(seconds, freed)
        return freed
