"""Multi-terminal BDDs (MTBDD/ADD): diagrams over numeric terminals.

The reference :class:`~repro.bdd.manager.BDDManager` hard-codes two
terminals (``FALSE``/``TRUE``); this manager generalises the terminal
set to an interned table of numbers (ints and floats), turning the
diagrams into Algebraic Decision Diagrams.  A boolean relation is the
``{0, 1}``-terminal special case — node ``0`` *is* the number 0 and
node ``1`` the number 1, so the relational layer's FALSE/TRUE handles
keep their meaning — and weighted relations (points-to
multiplicities, call frequencies, fuzzy/scored edges, as in the MTBDD
fuzzy-relations line of work) are diagrams whose terminals carry the
weights.

Operations come in three families:

* :meth:`apply` — pointwise binary combinators (``or``/``and``/``diff``
  for the boolean special case, ``add``/``mul``/``max``/``min`` for
  arithmetic) plus the ternary :meth:`ite`;
* :meth:`abstract` — quantification generalised from the boolean
  ``exist``: ``or``-abstraction is projection, while ``add``/``max``/
  ``min``-abstraction computes grouped sums, maxima, and minima (the
  engine under the relational ``count/sum/max/min/mean`` aggregates).
  Sum-abstraction doubles over skipped levels, exactly compensating
  for the reduction rule that elides don't-care tests;
* the usual table plumbing: hash-consed :meth:`mk`, bounded op caches,
  ref-counted mark-and-sweep GC, and :class:`~repro.bdd.stats.KernelStats`
  wired into every cache probe.

Dynamic variable reordering is not supported (``var == level`` always
holds); the relational layer treats that as an optional capability.
"""

from __future__ import annotations

from math import isnan
from time import perf_counter
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.bdd.manager import FALSE, TRUE, BDDError
from repro.bdd.stats import KernelStats

__all__ = ["MTBDDManager", "APPLY_OPS", "ABSTRACT_OPS"]

_OP_OR = 0
_OP_AND = 1
_OP_DIFF = 2
_OP_ADD = 3
_OP_MUL = 4
_OP_MAX = 5
_OP_MIN = 6
_OP_ITE = 7

_OP_NAMES = ("or", "and", "diff", "add", "mul", "max", "min", "ite")

#: Public names accepted by :meth:`MTBDDManager.apply`.
APPLY_OPS = ("or", "and", "diff", "add", "mul", "max", "min")
#: Public names accepted by :meth:`MTBDDManager.abstract`.
ABSTRACT_OPS = ("or", "add", "max", "min")

_OP_TAG = {name: i for i, name in enumerate(_OP_NAMES)}
_COMMUTATIVE = frozenset((_OP_OR, _OP_AND, _OP_ADD, _OP_MUL, _OP_MAX, _OP_MIN))
_BOOLEAN_OPS = frozenset((_OP_OR, _OP_AND, _OP_DIFF))


def _bool_or(x, y):
    return 1 if (x or y) else 0


def _bool_and(x, y):
    return 1 if (x and y) else 0


def _bool_diff(x, y):
    return 1 if (x and not y) else 0


_TERMINAL_FN: Dict[int, Callable] = {
    _OP_OR: _bool_or,
    _OP_AND: _bool_and,
    _OP_DIFF: _bool_diff,
    _OP_ADD: lambda x, y: x + y,
    _OP_MUL: lambda x, y: x * y,
    _OP_MAX: max,
    _OP_MIN: min,
}


class MTBDDManager:
    """A node table for reduced ordered MTBDDs over one variable order.

    Structurally a sibling of :class:`~repro.bdd.manager.BDDManager`:
    parallel node arrays, a hash-consing unique table, bounded op
    caches, and ref-counted mark-and-sweep GC.  The differences are the
    interned terminal table (any number of numeric terminals instead of
    exactly two) and the generalised operation set.

    Terminal nodes ``0`` and ``1`` are pre-interned for the values 0
    and 1, so handles of boolean functions coincide with the reference
    kernel's ``FALSE``/``TRUE`` convention.  Values are interned by
    numeric equality (``1`` and ``1.0`` share a terminal); ``NaN`` is
    rejected because it would break interning.
    """

    telemetry_name = "mtbdd"

    def __init__(
        self,
        num_vars: int,
        gc_threshold: int = 1 << 18,
        cache_limit: Optional[int] = None,
    ) -> None:
        if num_vars < 0:
            raise BDDError("num_vars must be non-negative")
        self._num_vars = num_vars
        # Parallel node arrays; terminals have low == high == -1 and the
        # level sentinel (any level >= _num_vars).
        self._level: List[int] = [num_vars, num_vars]
        self._low: List[int] = [-1, -1]
        self._high: List[int] = [-1, -1]
        self._refs: List[int] = [1, 1]  # terminals are permanently live
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._free: List[int] = []
        #: value -> terminal node (interned) and the reverse map.
        self._terminal_of: Dict[object, int] = {0: FALSE, 1: TRUE}
        self._value_of: Dict[int, object] = {FALSE: 0, TRUE: 1}
        # Operation caches (cleared by gc()).
        self._apply_cache: Dict[Tuple, int] = {}
        self._abstract_cache: Dict[Tuple, int] = {}
        self._replace_cache: Dict[Tuple, int] = {}
        self.gc_threshold = gc_threshold
        self.cache_limit = cache_limit
        self.gc_count = 0
        self.stats = KernelStats(_OP_NAMES)
        self.gc_listeners: List[Callable[[float, int], None]] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        """Number of boolean decision variables managed."""
        return self._num_vars

    @property
    def num_nodes(self) -> int:
        """Number of live nodes, terminals included."""
        return len(self._level) - len(self._free)

    def table_stats(self) -> Dict[str, float]:
        """Node-table occupancy gauges (for telemetry snapshots)."""
        live = self.num_nodes
        self.stats.note_live(live)
        capacity = len(self._level)
        return {
            "live_nodes": live,
            "capacity": capacity,
            "free_slots": len(self._free),
            "unique_entries": len(self._unique),
            "load": live / capacity if capacity else 0.0,
            "num_vars": self._num_vars,
            "terminals": len(self._terminal_of),
            "peak_live_nodes": self.stats.peak_live_nodes,
        }

    def cache_stats(self) -> Dict[str, int]:
        """Entry counts of the operation caches."""
        return {
            "apply": len(self._apply_cache),
            "abstract": len(self._abstract_cache),
            "replace": len(self._replace_cache),
        }

    def is_terminal(self, node: int) -> bool:
        """True for interned terminal (constant) nodes."""
        return node in self._value_of

    def terminal(self, value) -> int:
        """The interned terminal node carrying ``value``.

        ``value`` must be an int, float, or bool (normalised to int);
        numerically equal values share one terminal.
        """
        if isinstance(value, bool):
            value = int(value)
        elif not isinstance(value, (int, float)):
            raise BDDError(
                f"terminal values must be numbers, got {type(value).__name__}"
            )
        if isinstance(value, float) and isnan(value):
            raise BDDError("NaN terminals are not interned")
        node = self._terminal_of.get(value)
        if node is not None:
            return node
        if self._free:
            node = self._free.pop()
            self._level[node] = self._num_vars
            self._low[node] = -1
            self._high[node] = -1
            self._refs[node] = 1
        else:
            node = len(self._level)
            self._level.append(self._num_vars)
            self._low.append(-1)
            self._high.append(-1)
            self._refs.append(1)
        self._terminal_of[value] = node
        self._value_of[node] = value
        self.stats.nodes_created += 1
        return node

    def value(self, node: int):
        """The number carried by a terminal node."""
        try:
            return self._value_of[node]
        except KeyError:
            raise BDDError(f"node {node} is not a terminal") from None

    def terminal_values(self) -> List[object]:
        """All interned terminal values, in interning order."""
        return list(self._terminal_of)

    def level_of(self, node: int) -> int:
        """Level of ``node`` (``num_vars`` for terminals)."""
        return self._level[node]

    def var_of(self, node: int) -> int:
        """Variable id tested by ``node`` (identical to its level: this
        manager does not reorder)."""
        return self._level[node]

    def level_of_var(self, var: int) -> int:
        self._check_var(var)
        return var

    def var_at_level(self, level: int) -> int:
        if not 0 <= level < self._num_vars:
            raise BDDError(f"level {level} out of range [0, {self._num_vars})")
        return level

    def low(self, node: int) -> int:
        return self._low[node]

    def high(self, node: int) -> int:
        return self._high[node]

    def _check_var(self, var: int) -> None:
        if not 0 <= var < self._num_vars:
            raise BDDError(
                f"variable {var} out of range [0, {self._num_vars})"
            )

    def _to_levels(self, variables: Iterable[int]) -> List[int]:
        out = []
        for var in variables:
            self._check_var(var)
            out.append(var)
        return out

    def _clear_caches(self) -> None:
        self._apply_cache.clear()
        self._abstract_cache.clear()
        self._replace_cache.clear()

    def _cache_store(self, cache, key, result):
        if self.cache_limit is not None and len(cache) >= self.cache_limit:
            cache.clear()
        cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------

    def add_vars(self, count: int) -> None:
        """Append ``count`` fresh variables below all existing levels."""
        if count < 0:
            raise BDDError("count must be non-negative")
        self._num_vars += count
        for node in self._value_of:
            self._level[node] = self._num_vars
        self._abstract_cache.clear()

    def mk(self, level: int, low: int, high: int) -> int:
        """Canonical node testing ``level`` (MTBDD reduction rules)."""
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is not None:
            return node
        if self._free:
            node = self._free.pop()
            self._level[node] = level
            self._low[node] = low
            self._high[node] = high
            self._refs[node] = 0
        else:
            node = len(self._level)
            self._level.append(level)
            self._low.append(low)
            self._high.append(high)
            self._refs.append(0)
        self._unique[key] = node
        self.stats.nodes_created += 1
        return node

    def var(self, var: int) -> int:
        """The 0/1 diagram of a single variable."""
        self._check_var(var)
        return self.mk(var, FALSE, TRUE)

    def nvar(self, var: int) -> int:
        """The 0/1 diagram of a negated variable."""
        self._check_var(var)
        return self.mk(var, TRUE, FALSE)

    def cube(self, assignment: Dict[int, bool]) -> int:
        """The 0/1 diagram of one complete tuple (conjunction of literals)."""
        items = []
        for var, value in assignment.items():
            self._check_var(var)
            items.append((var, value))
        items.sort(reverse=True)
        node = TRUE
        for level, value in items:
            if value:
                node = self.mk(level, FALSE, node)
            else:
                node = self.mk(level, node, FALSE)
        return node

    def const(self, value) -> int:
        """Alias of :meth:`terminal` (ADD-style naming)."""
        return self.terminal(value)

    # ------------------------------------------------------------------
    # Pointwise combinators
    # ------------------------------------------------------------------

    def apply(self, op: str, a: int, b: int) -> int:
        """Combine two diagrams pointwise with the named operation.

        ``or``/``and``/``diff`` require 0/1 terminals (the boolean
        special case); ``add``/``mul``/``max``/``min`` accept any
        numeric terminals.
        """
        tag = _OP_TAG.get(op)
        if tag is None or tag == _OP_ITE:
            raise BDDError(f"unknown apply operation {op!r}")
        return self._apply(tag, a, b)

    def apply_or(self, a: int, b: int) -> int:
        return self._apply(_OP_OR, a, b)

    def apply_and(self, a: int, b: int) -> int:
        return self._apply(_OP_AND, a, b)

    def apply_diff(self, a: int, b: int) -> int:
        return self._apply(_OP_DIFF, a, b)

    def apply_not(self, a: int) -> int:
        """Boolean complement (via diff from the constant 1)."""
        return self._apply(_OP_DIFF, TRUE, a)

    def _require_boolean(self, node: int) -> int:
        value = self._value_of[node]
        if value not in (0, 1):
            raise BDDError(
                f"boolean operation on non-boolean terminal {value!r}"
            )
        return value

    def _apply(self, op: int, a: int, b: int) -> int:
        # Terminal short-cuts that do not need the value table.
        if op == _OP_OR:
            if a == TRUE or b == TRUE:
                return TRUE
            if a == FALSE:
                return b
            if b == FALSE:
                return a
            if a == b:
                return a
        elif op == _OP_AND:
            if a == FALSE or b == FALSE:
                return FALSE
            if a == TRUE:
                return b
            if b == TRUE:
                return a
            if a == b:
                return a
        elif op == _OP_DIFF:
            if a == FALSE or b == TRUE or a == b:
                return FALSE
            if b == FALSE:
                return a
        elif op == _OP_ADD:
            if a == FALSE:
                return b
            if b == FALSE:
                return a
        elif op == _OP_MUL:
            if a == FALSE or b == FALSE:
                return FALSE
            if a == TRUE:
                return b
            if b == TRUE:
                return a
        elif op in (_OP_MAX, _OP_MIN):
            if a == b:
                return a
        if self._low[a] == -1 and self._low[b] == -1:
            va, vb = self._value_of[a], self._value_of[b]
            if op in _BOOLEAN_OPS:
                if va not in (0, 1) or vb not in (0, 1):
                    raise BDDError(
                        f"boolean operation {_OP_NAMES[op]!r} on "
                        f"non-boolean terminals {va!r}, {vb!r}"
                    )
            return self.terminal(_TERMINAL_FN[op](va, vb))
        if op in _COMMUTATIVE and a > b:
            a, b = b, a
        key = (op, a, b)
        cached = self._apply_cache.get(key)
        if cached is not None:
            self.stats.op_hits[op] += 1
            return cached
        self.stats.op_misses[op] += 1
        la, lb = self._level[a], self._level[b]
        level = min(la, lb)
        a0, a1 = (self._low[a], self._high[a]) if la == level else (a, a)
        b0, b1 = (self._low[b], self._high[b]) if lb == level else (b, b)
        result = self.mk(
            level, self._apply(op, a0, b0), self._apply(op, a1, b1)
        )
        return self._cache_store(self._apply_cache, key, result)

    def ite(self, f: int, g: int, h: int) -> int:
        """Pointwise if-then-else: ``f(x) ? g(x) : h(x)``.

        ``f`` must have 0/1 terminals; ``g``/``h`` may carry any values.
        """
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if self._low[f] == -1:
            return g if self._require_boolean(f) else h
        if g == TRUE and h == FALSE:
            return f
        key = (_OP_ITE, f, g, h)
        cached = self._apply_cache.get(key)
        if cached is not None:
            self.stats.op_hits[_OP_ITE] += 1
            return cached
        self.stats.op_misses[_OP_ITE] += 1
        lf, lg, lh = self._level[f], self._level[g], self._level[h]
        level = min(lf, lg, lh)
        f0, f1 = (self._low[f], self._high[f]) if lf == level else (f, f)
        g0, g1 = (self._low[g], self._high[g]) if lg == level else (g, g)
        h0, h1 = (self._low[h], self._high[h]) if lh == level else (h, h)
        result = self.mk(
            level, self.ite(f0, g0, h0), self.ite(f1, g1, h1)
        )
        return self._cache_store(self._apply_cache, key, result)

    # ------------------------------------------------------------------
    # Abstraction (generalised quantification)
    # ------------------------------------------------------------------

    def exist(self, a: int, variables: Iterable[int]) -> int:
        """Boolean existential quantification (``or``-abstraction)."""
        return self.abstract("or", a, variables)

    def abstract(self, op: str, a: int, variables: Iterable[int]) -> int:
        """Quantify ``variables`` out of ``a`` by combining cofactors
        with ``op`` (``or``, ``add``, ``max``, or ``min``).

        ``add``-abstraction sums the function over all assignments of
        the quantified variables: a quantified variable skipped by the
        diagram's reduction rule contributes a factor of two, which the
        implementation applies explicitly.  ``or``/``max``/``min`` are
        idempotent, so skipped variables are no-ops for them.
        """
        tag = _OP_TAG.get(op)
        if tag is None or op not in ABSTRACT_OPS:
            raise BDDError(f"unknown abstraction operation {op!r}")
        lv = tuple(sorted(set(self._to_levels(variables))))
        if not lv:
            return a
        return self._abstract(tag, a, lv)

    def _abstract(self, op: int, a: int, levels: Tuple[int, ...]) -> int:
        if self._low[a] == -1:  # terminal
            if op == _OP_ADD and levels and a != FALSE:
                return self.terminal(self._value_of[a] * (2 ** len(levels)))
            return a
        la = self._level[a]
        # Quantified levels above this node no longer occur below it;
        # each one doubles a sum (or(x,x) = max(x,x) = x, but x+x = 2x).
        idx = 0
        while idx < len(levels) and levels[idx] < la:
            idx += 1
        dropped = idx
        levels = levels[idx:]
        if not levels:
            result = a
        else:
            key = (op, a, levels)
            cached = self._abstract_cache.get(key)
            if cached is not None:
                self.stats.exist_hits += 1
                result = cached
            else:
                self.stats.exist_misses += 1
                if la == levels[0]:
                    rest = levels[1:]
                    low = self._abstract(op, self._low[a], rest)
                    if op == _OP_OR and low == TRUE:
                        result = TRUE  # short-circuit, as in _exist
                    else:
                        high = self._abstract(op, self._high[a], rest)
                        result = self._apply(op, low, high)
                else:
                    result = self.mk(
                        la,
                        self._abstract(op, self._low[a], levels),
                        self._abstract(op, self._high[a], levels),
                    )
                self._cache_store(self._abstract_cache, key, result)
        if op == _OP_ADD and dropped and result != FALSE:
            result = self._apply(
                _OP_MUL, result, self.terminal(2 ** dropped)
            )
        return result

    def and_exist(self, a: int, b: int, variables: Iterable[int]) -> int:
        """``exist(a AND b, variables)`` (boolean operands only).

        Not fused: correctness-first, matching the generic backend path.
        """
        return self.exist(self.apply_and(a, b), variables)

    # ------------------------------------------------------------------
    # Variable permutation (physical domain moves)
    # ------------------------------------------------------------------

    def replace(self, a: int, permutation: Dict[int, int]) -> int:
        """Rebuild ``a`` with variables renamed by ``permutation``
        (injective), recomposing via ITE so order-changing permutations
        are handled correctly.  Works for any terminal values."""
        perm = {k: v for k, v in permutation.items() if k != v}
        if not perm:
            return a
        if len(set(perm.values())) != len(perm):
            raise BDDError("replace permutation must be injective")
        for old, new in perm.items():
            self._check_var(old)
            self._check_var(new)
        key_perm = tuple(sorted(perm.items()))
        memo: Dict[int, int] = {}

        def rec(node: int) -> int:
            if self._low[node] == -1:
                return node
            cached = self._replace_cache.get((node, key_perm))
            if cached is not None:
                self.stats.replace_hits += 1
                return cached
            hit = memo.get(node)
            if hit is not None:
                return hit
            self.stats.replace_misses += 1
            level = self._level[node]
            new_level = perm.get(level, level)
            low = rec(self._low[node])
            high = rec(self._high[node])
            result = self.ite(self.mk(new_level, FALSE, TRUE), high, low)
            memo[node] = result
            return self._cache_store(
                self._replace_cache, (node, key_perm), result
            )

        return rec(a)

    # ------------------------------------------------------------------
    # Evaluation and enumeration
    # ------------------------------------------------------------------

    def evaluate(self, a: int, assignment: Dict[int, bool]):
        """The terminal value of ``a`` under a (possibly partial)
        assignment covering its support."""
        node = a
        while self._low[node] != -1:
            var = self._level[node]
            if var not in assignment:
                raise BDDError(
                    f"assignment does not cover variable {var}"
                )
            node = self._high[node] if assignment[var] else self._low[node]
        return self._value_of[node]

    def support(self, a: int) -> frozenset:
        """Variable ids occurring in ``a``."""
        seen = set()
        vars_seen = set()
        stack = [a]
        while stack:
            node = stack.pop()
            if node in seen or self._low[node] == -1:
                continue
            seen.add(node)
            vars_seen.add(self._level[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return frozenset(vars_seen)

    def sat_count(self, a: int, variables: Sequence[int]) -> int:
        """Number of assignments of ``variables`` mapped to a non-zero
        value (the relational cardinality for 0/1 diagrams).

        Implemented via ``add``-abstraction over the requested
        variables, so it is exact in O(nodes); requires 0/1 terminals.
        """
        bad = self.support(a) - set(variables)
        if bad:
            raise BDDError(
                f"sat_count variables do not cover support variables "
                f"{sorted(bad)}"
            )
        for v in self.terminals_of(a):
            if v not in (0, 1):
                raise BDDError(
                    f"sat_count over non-boolean terminal {v!r}"
                )
        total = self._abstract(
            _OP_ADD, a, tuple(sorted(set(self._to_levels(variables))))
        ) if variables else a
        return int(self._value_of[total])

    def weighted_total(self, a: int, variables: Sequence[int]):
        """Sum of the function over all assignments of ``variables``
        (which must cover the support)."""
        bad = self.support(a) - set(variables)
        if bad:
            raise BDDError(
                f"weighted_total variables do not cover support "
                f"variables {sorted(bad)}"
            )
        lv = tuple(sorted(set(self._to_levels(variables))))
        node = self._abstract(_OP_ADD, a, lv) if lv else a
        return self._value_of[node]

    def terminals_of(self, a: int) -> List[object]:
        """Distinct terminal values reachable from ``a``."""
        seen = set()
        values = set()
        stack = [a]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if self._low[node] == -1:
                values.add(self._value_of[node])
                continue
            stack.append(self._low[node])
            stack.append(self._high[node])
        return sorted(values, key=lambda v: (float(v), isinstance(v, float)))

    def all_sat(
        self, a: int, variables: Sequence[int]
    ) -> Iterator[Dict[int, bool]]:
        """Iterate complete assignments over ``variables`` with non-zero
        value (tuple enumeration for 0/1 diagrams)."""
        for assignment, _ in self.all_terminals(a, variables):
            yield assignment

    def all_terminals(
        self, a: int, variables: Sequence[int]
    ) -> Iterator[Tuple[Dict[int, bool], object]]:
        """Iterate ``(assignment, value)`` pairs over ``variables`` for
        every assignment mapped to a non-zero value.  Wildcard bits
        within ``variables`` are expanded to both values."""
        level_list = sorted(set(self._to_levels(variables)))
        bad = self.support(a) - set(variables)
        if bad:
            raise BDDError(
                f"all_terminals variables do not cover support "
                f"variables {sorted(bad)}"
            )

        def rec(node: int, idx: int):
            if node == FALSE:
                return
            if idx == len(level_list):
                if self._low[node] == -1:
                    value = self._value_of[node]
                    if value != 0:
                        yield {}, value
                return
            level = level_list[idx]
            if self._level[node] == level:
                for value, child in (
                    (False, self._low[node]),
                    (True, self._high[node]),
                ):
                    for rest, terminal in rec(child, idx + 1):
                        rest[level] = value
                        yield rest, terminal
            else:
                for rest, terminal in rec(node, idx + 1):
                    for value in (False, True):
                        out = dict(rest)
                        out[level] = value
                        yield out, terminal

        return rec(a, 0)

    # ------------------------------------------------------------------
    # Shape and size
    # ------------------------------------------------------------------

    def node_count(self, a: int) -> int:
        """Distinct internal nodes reachable from ``a``."""
        seen = set()
        stack = [a]
        while stack:
            node = stack.pop()
            if node in seen or self._low[node] == -1:
                continue
            seen.add(node)
            stack.append(self._low[node])
            stack.append(self._high[node])
        return len(seen)

    def shape(self, a: int) -> List[int]:
        """Node count at each level."""
        counts = [0] * self._num_vars
        seen = set()
        stack = [a]
        while stack:
            node = stack.pop()
            if node in seen or self._low[node] == -1:
                continue
            seen.add(node)
            counts[self._level[node]] += 1
            stack.append(self._low[node])
            stack.append(self._high[node])
        return counts

    def postorder(self, root: int) -> List[int]:
        """Internal nodes reachable from ``root``, children first (the
        topological order the serializers write)."""
        order: List[int] = []
        if self._low[root] == -1:
            return order
        seen = set()
        stack: List[Tuple[int, bool]] = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order.append(node)
                continue
            if node in seen or self._low[node] == -1:
                continue
            seen.add(node)
            stack.append((node, True))
            stack.append((self._high[node], False))
            stack.append((self._low[node], False))
        return order

    # ------------------------------------------------------------------
    # Reference counting and garbage collection
    # ------------------------------------------------------------------

    def ref(self, node: int) -> int:
        self._refs[node] += 1
        return node

    def deref(self, node: int) -> None:
        if self._refs[node] <= 0:
            raise BDDError(f"deref of node {node} with zero refcount")
        self._refs[node] -= 1

    def ref_count(self, node: int) -> int:
        return self._refs[node]

    def maybe_gc(self) -> bool:
        ran = False
        if self.num_nodes > self.gc_threshold:
            self.gc()
            if self.num_nodes > self.gc_threshold * 3 // 4:
                self.gc_threshold *= 2
            ran = True
        return ran

    def gc(self) -> int:
        """Sweep nodes unreachable from externally referenced roots.

        Terminals are permanently live (their interned identities must
        survive).  All operation caches are cleared.
        """
        start = perf_counter()
        self.stats.note_live(self.num_nodes)
        marked = [False] * len(self._level)
        stack = [n for n, r in enumerate(self._refs) if r > 0]
        while stack:
            node = stack.pop()
            if marked[node] or self._low[node] == -1:
                continue
            marked[node] = True
            stack.append(self._low[node])
            stack.append(self._high[node])
        freed = 0
        free_set = set(self._free)
        for node in range(2, len(self._level)):
            if (
                not marked[node]
                and node not in free_set
                and node not in self._value_of
            ):
                key = (self._level[node], self._low[node], self._high[node])
                if self._unique.get(key) == node:
                    del self._unique[key]
                self._low[node] = -1
                self._high[node] = -1
                self._free.append(node)
                freed += 1
        self._clear_caches()
        self.gc_count += 1
        seconds = perf_counter() - start
        stats = self.stats
        stats.gc_runs += 1
        stats.gc_seconds += seconds
        stats.last_gc_seconds = seconds
        stats.gc_reclaimed += freed
        for listener in self.gc_listeners:
            listener(seconds, freed)
        return freed

    # ------------------------------------------------------------------
    # Debugging
    # ------------------------------------------------------------------

    def check_integrity(self) -> None:
        """Verify table invariants; raises :class:`BDDError` on failure."""
        free_set = set(self._free)
        for n in range(len(self._level)):
            if n in free_set or self._low[n] == -1:
                continue
            lo, hi = self._low[n], self._high[n]
            if lo == hi:
                raise BDDError(f"node {n} is a redundant test")
            lvl = self._level[n]
            if not 0 <= lvl < self._num_vars:
                raise BDDError(f"node {n} has bad level {lvl}")
            for child in (lo, hi):
                if self._level[child] <= lvl and self._low[child] != -1:
                    raise BDDError(
                        f"ordering violated: node {n} (level {lvl}) -> "
                        f"{child} (level {self._level[child]})"
                    )
            if self._unique.get((lvl, lo, hi)) != n:
                raise BDDError(f"node {n} missing from unique table")
        for value, node in self._terminal_of.items():
            if self._value_of.get(node) != value:
                raise BDDError(f"terminal table inconsistent at {value!r}")
