"""Vectorized "arena" BDD kernel: struct-of-arrays node store with
breadth-first, level-synchronized operations.

The reference kernel (:mod:`repro.bdd.manager`) resolves every
``apply``/``exist``/``and_exist`` request with one recursive Python call
per node pair.  That is the hot path under every analysis in this
reproduction -- the paper's whole pitch (PLDI 2004, sections 3.2 and 4)
is that relational operations lower to a handful of BDD kernel calls, so
kernel time dominates.  This module reorganises those kernels the way
external-memory and vectorized BDD packages do (see PAPERS.md: Sølvsten
& van de Pol, "Symbolic Model Checking in External Memory"): requests
are bucketed by the *level* of their topmost variable and whole
frontiers of requests are processed per level as numpy array operations
-- cofactor extraction, terminal short-cuts, duplicate collapsing,
operation-cache probes and unique-table insertion all become batch
primitives instead of per-node dictionary traffic.

Layout
------

- Node store: parallel ``numpy`` int64 arrays (``_level``, ``_low``,
  ``_high``, ``_refs``, ``_parents``) with amortised-doubling growth; a
  node id indexes all five.  Terminals stay at ids 0/1.
- :class:`VectorTable`: an open-addressing hash table over three int64
  key columns with both a scalar dict-like API (so the inherited
  reordering machinery works unchanged) and batch ``lookup`` /
  ``insert_many`` / ``delete_many`` primitives whose scalar and
  vectorized hash functions agree slot-for-slot.  It backs the unique
  table and the ``apply``/``exist``/``and_exist`` operation caches.
- Breadth-first kernels: each operation seeds a request frontier, sweeps
  *down* the levels in ascending order (expanding cofactors, resolving
  terminal cases, deduplicating, probing caches, enqueueing child
  requests -- a child's top level is always strictly deeper, so every
  level is processed exactly once), then sweeps *up* resolving each
  level's unresolved requests with batched unique-table insertion
  (:meth:`ArenaBDDManager.mk_many`).
- Hybrid execution: buckets narrower than ``vector_threshold`` are
  processed with plain-Python loops (per-element numpy overhead would
  dominate tiny operations); wide buckets take the vector path.  Both
  produce identical nodes -- hash-consing makes results canonical
  regardless of evaluation strategy, which is what the cross-kernel
  differential suite (``tests/bdd/test_differential.py``) asserts.

Everything else -- reference counting, mark-and-sweep GC, Rudell
sifting/reordering, serialization (:mod:`repro.bdd.io`), telemetry
(:class:`repro.bdd.stats.KernelStats`) -- is inherited from
:class:`~repro.bdd.manager.BDDManager` or reimplemented with identical
observable behaviour, so the arena drops in behind the
``DiagramBackend`` seam: select it with ``open_universe(kernel="arena")``
or ``JEDD_KERNEL=arena``.  See ``docs/KERNEL.md``.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bdd.manager import (
    FALSE,
    TRUE,
    BDDError,
    BDDManager,
    _OP_AND,
    _OP_DIFF,
    _OP_OR,
    _OP_XOR,
)

__all__ = ["ArenaBDDManager", "VectorTable"]

_EMPTY = -1
_TOMB = -2
_M64 = (1 << 64) - 1
# Mixing constants (golden-ratio / xxhash-style odd multipliers).
_C1 = 0x9E3779B97F4A7C15
_C2 = 0xC2B2AE3D27D4EB4F
_C3 = 0x165667B19E3779F9

_I64 = np.int64
_U64 = np.uint64

#: Managers with at most this many variables run narrow (single-request)
#: apply/exist calls through the reference recursion: diagram depth is
#: bounded by the variable count, so the interpreter stack is safe, and
#: the recursive path has far less per-call overhead than building a
#: one-element frontier.  Deeper managers always take the breadth-first
#: engine, which never recurses.  Wide batches take it regardless.
_RECURSION_SAFE_VARS = 400

#: Cache-key namespace for the fused variable-insertion op (see
#: :meth:`ArenaBDDManager._ite_var`).  Binary ops use codes 0-3; keying
#: ite_var entries as ``(_ITEVAR_BASE + level, f, g)`` keeps them disjoint
#: inside the shared apply cache.
_ITEVAR_BASE = 8


class VectorTable:
    """Open-addressing hash table: three ``int64`` keys -> one ``int64``.

    Values must be non-negative (``-1``/``-2`` are the empty/tombstone
    sentinels in the value column).  Linear probing; grows at 70% fill
    by batch re-insertion.  The scalar probes (``get``/``__setitem__``/
    ``__delitem__``, used by the inherited reordering code) and the
    batch probes (``lookup``/``insert_many``/``delete_many``, used by
    the breadth-first kernels) share one hash function, computed with
    Python arbitrary-precision masking on one side and uint64
    wraparound on the other, so they land on identical slots.
    """

    __slots__ = ("_cap", "_mask", "_k1", "_k2", "_k3", "_val", "_used", "_fill")

    def __init__(self, capacity: int = 64) -> None:
        cap = 8
        while cap < capacity:
            cap <<= 1
        self._alloc(cap)

    def _alloc(self, cap: int) -> None:
        self._cap = cap
        self._mask = cap - 1
        self._k1 = np.zeros(cap, _I64)
        self._k2 = np.zeros(cap, _I64)
        self._k3 = np.zeros(cap, _I64)
        self._val = np.full(cap, _EMPTY, _I64)
        self._used = 0  # live entries
        self._fill = 0  # live entries + tombstones

    def __len__(self) -> int:
        return self._used

    def clear(self) -> None:
        self._val.fill(_EMPTY)
        self._used = 0
        self._fill = 0

    # -- hashing -------------------------------------------------------

    def _slot1(self, k1: int, k2: int, k3: int) -> int:
        h = (k1 * _C1) & _M64
        h ^= h >> 29
        h = (h + k2 * _C2) & _M64
        h ^= h >> 31
        h = (h + k3 * _C3) & _M64
        h ^= h >> 32
        return int(h & self._mask)

    def _slots(self, k1: np.ndarray, k2: np.ndarray, k3: np.ndarray) -> np.ndarray:
        h = k1.astype(_U64) * _U64(_C1)
        h ^= h >> _U64(29)
        h += k2.astype(_U64) * _U64(_C2)
        h ^= h >> _U64(31)
        h += k3.astype(_U64) * _U64(_C3)
        h ^= h >> _U64(32)
        return (h & _U64(self._mask)).astype(_I64)

    # -- scalar (dict-style) API --------------------------------------

    def get3(self, k1: int, k2: int, k3: int) -> int:
        """Scalar probe; returns the value or ``-1`` when absent."""
        # Hash inlined (and .item() reads, which return plain ints):
        # this probe sits on the kernel's hottest scalar path via mk().
        h = (k1 * _C1) & _M64
        h ^= h >> 29
        h = (h + k2 * _C2) & _M64
        h ^= h >> 31
        h = (h + k3 * _C3) & _M64
        h ^= h >> 32
        mask = self._mask
        i = int(h) & mask
        val, a1, a2, a3 = self._val, self._k1, self._k2, self._k3
        while True:
            v = val.item(i)
            if v == _EMPTY:
                return -1
            if v != _TOMB and (
                a1.item(i) == k1 and a2.item(i) == k2 and a3.item(i) == k3
            ):
                return v
            i = (i + 1) & mask

    def set3(self, k1: int, k2: int, k3: int, value: int) -> None:
        if (self._fill + 1) * 10 >= self._cap * 7:
            self._grow(self._cap * 2)
        val, a1, a2, a3 = self._val, self._k1, self._k2, self._k3
        mask = self._mask
        h = (k1 * _C1) & _M64
        h ^= h >> 29
        h = (h + k2 * _C2) & _M64
        h ^= h >> 31
        h = (h + k3 * _C3) & _M64
        h ^= h >> 32
        i = int(h) & mask
        tomb = -1
        while True:
            v = val.item(i)
            if v == _EMPTY:
                if tomb >= 0:
                    i = tomb
                else:
                    self._fill += 1
                a1[i] = k1
                a2[i] = k2
                a3[i] = k3
                val[i] = value
                self._used += 1
                return
            if v == _TOMB:
                if tomb < 0:
                    tomb = i
            elif a1.item(i) == k1 and a2.item(i) == k2 and a3.item(i) == k3:
                val[i] = value
                return
            i = (i + 1) & mask

    def get(self, key, default=None):
        v = self.get3(int(key[0]), int(key[1]), int(key[2]))
        return default if v < 0 else v

    def __getitem__(self, key) -> int:
        v = self.get3(int(key[0]), int(key[1]), int(key[2]))
        if v < 0:
            raise KeyError(key)
        return v

    def __contains__(self, key) -> bool:
        return self.get3(int(key[0]), int(key[1]), int(key[2])) >= 0

    def __setitem__(self, key, value) -> None:
        self.set3(int(key[0]), int(key[1]), int(key[2]), int(value))

    def __delitem__(self, key) -> None:
        k1, k2, k3 = int(key[0]), int(key[1]), int(key[2])
        val, a1, a2, a3 = self._val, self._k1, self._k2, self._k3
        mask = self._mask
        i = self._slot1(k1, k2, k3)
        while True:
            v = val[i]
            if v == _EMPTY:
                raise KeyError(key)
            if v != _TOMB and a1[i] == k1 and a2[i] == k2 and a3[i] == k3:
                val[i] = _TOMB
                self._used -= 1
                return
            i = (i + 1) & mask

    # -- batch API -----------------------------------------------------

    def lookup(
        self, k1: np.ndarray, k2: np.ndarray, k3: np.ndarray
    ) -> np.ndarray:
        """Batch probe; ``-1`` where a key is absent."""
        n = len(k1)
        out = np.full(n, _EMPTY, _I64)
        if n == 0 or self._used == 0:
            return out
        val, a1, a2, a3 = self._val, self._k1, self._k2, self._k3
        mask = self._mask
        slot = self._slots(k1, k2, k3)
        pend = np.arange(n)
        while pend.size:
            s = slot[pend]
            v = val[s]
            hit = (
                (v >= 0)
                & (a1[s] == k1[pend])
                & (a2[s] == k2[pend])
                & (a3[s] == k3[pend])
            )
            out[pend[hit]] = v[hit]
            pend = pend[~(hit | (v == _EMPTY))]
            slot[pend] = (slot[pend] + 1) & mask
        return out

    def insert_many(
        self,
        k1: np.ndarray,
        k2: np.ndarray,
        k3: np.ndarray,
        vals: np.ndarray,
    ) -> None:
        """Batch insert of keys known to be absent and pairwise distinct.

        Within-batch slot collisions resolve first-writer-wins per
        probing round; losers advance to their next slot, so the result
        is exactly a sequence of scalar inserts.
        """
        n = len(k1)
        if n == 0:
            return
        need = self._fill + n
        cap = self._cap
        while need * 10 >= cap * 7:
            cap *= 2
        if cap != self._cap:
            self._grow(cap)
        val = self._val
        mask = self._mask
        slot = self._slots(k1, k2, k3)
        pend = np.arange(n)
        while pend.size:
            s = slot[pend]
            v = val[s]
            free = v < 0
            if free.any():
                fpos = np.flatnonzero(free)
                fslots = s[fpos]
                uslots, first = np.unique(fslots, return_index=True)
                wpos = fpos[first]  # winning positions within pend
                widx = pend[wpos]  # original batch indices
                self._k1[uslots] = k1[widx]
                self._k2[uslots] = k2[widx]
                self._k3[uslots] = k3[widx]
                self._fill += int(np.count_nonzero(val[uslots] == _EMPTY))
                val[uslots] = vals[widx]
                self._used += len(uslots)
                done = np.zeros(pend.size, dtype=bool)
                done[wpos] = True
                pend = pend[~done]
            slot[pend] = (slot[pend] + 1) & mask

    def delete_many(
        self,
        k1: np.ndarray,
        k2: np.ndarray,
        k3: np.ndarray,
        expected: np.ndarray,
    ) -> None:
        """Batch delete, skipping keys whose value is not ``expected``
        (mirrors the reference GC's ``unique.get(key) == node`` guard)."""
        n = len(k1)
        if n == 0 or self._used == 0:
            return
        val, a1, a2, a3 = self._val, self._k1, self._k2, self._k3
        mask = self._mask
        slot = self._slots(k1, k2, k3)
        pend = np.arange(n)
        removed = 0
        while pend.size:
            s = slot[pend]
            v = val[s]
            match = (
                (v >= 0)
                & (a1[s] == k1[pend])
                & (a2[s] == k2[pend])
                & (a3[s] == k3[pend])
            )
            if match.any():
                ok = v[match] == expected[pend[match]]
                targets = s[match][ok]
                val[targets] = _TOMB
                removed += len(targets)
            pend = pend[~(match | (v == _EMPTY))]
            slot[pend] = (slot[pend] + 1) & mask
        self._used -= removed

    def _grow(self, cap: int) -> None:
        k1, k2, k3, v = self._k1, self._k2, self._k3, self._val
        live = v >= 0
        self._alloc(cap)
        self.insert_many(k1[live], k2[live], k3[live], v[live])


def _apply_shortcut(op: int, a: int, b: int) -> int:
    """Scalar terminal short-cuts of the reference ``_apply``; -1 if none."""
    if op == _OP_AND:
        if a == FALSE or b == FALSE:
            return FALSE
        if a == TRUE:
            return b
        if b == TRUE:
            return a
        if a == b:
            return a
    elif op == _OP_OR:
        if a == TRUE or b == TRUE:
            return TRUE
        if a == FALSE:
            return b
        if b == FALSE:
            return a
        if a == b:
            return a
    elif op == _OP_DIFF:
        if a == FALSE or b == TRUE or a == b:
            return FALSE
        if b == FALSE:
            return a
    else:  # _OP_XOR
        if a == b:
            return FALSE
        if a == FALSE:
            return b
        if b == FALSE:
            return a
    return -1


class _Frontier:
    """Per-call breadth-first state: level buckets of pending requests.

    Request results are tracked by *gid* (a dense per-call id); the
    downward sweep allocates gids for unresolved child requests and the
    upward sweep scatters resolved node ids into :attr:`res`.
    """

    __slots__ = ("buckets", "heap", "res", "n")

    def __init__(self) -> None:
        self.buckets: Dict[int, list] = {}
        self.heap: List[int] = []
        self.res = np.full(64, -1, _I64)
        self.n = 0

    def new_gids(self, count: int) -> int:
        start = self.n
        self.n += count
        if self.n > len(self.res):
            cap = len(self.res)
            while cap < self.n:
                cap *= 2
            grown = np.full(cap, -1, _I64)
            grown[:start] = self.res[:start]
            self.res = grown
        return start

    def push(self, level: int, chunk) -> None:
        b = self.buckets.get(level)
        if b is None:
            self.buckets[level] = [chunk]
            heapq.heappush(self.heap, level)
        else:
            b.append(chunk)

    def pop_level(self):
        level = heapq.heappop(self.heap)
        return level, self.buckets.pop(level)


class ArenaBDDManager(BDDManager):
    """The vectorized struct-of-arrays BDD kernel.

    A drop-in subclass of :class:`~repro.bdd.manager.BDDManager`: the
    public API, reference-counting protocol, reordering machinery and
    serialization formats are unchanged, and results are bit-identical
    (equal canonical node tables under equal variable orders).  See the
    module docstring for the execution model.

    Extra parameters
    ----------------
    vector_threshold:
        Frontier width at which bucket processing switches from the
        plain-Python loop to the numpy batch path.
    initial_capacity:
        Initial node-array capacity (grows by doubling).  Tests use tiny
        values to force growth on every path.
    """

    kernel_name = "arena"

    #: The per-level node index (``_at_level``) and the parent counters
    #: (``_parents``) are maintained lazily: the reorder machinery is
    #: their only consumer, so the steady-state hot path skips the
    #: per-node bookkeeping entirely and both are rebuilt vectorized on
    #: entry to swap/sift/reorder (then tracked eagerly while those run,
    #: since they create and free nodes mid-flight).  Class attribute so
    #: ``super().__init__`` sees it before the instance flag exists.
    _track_levels = False

    def __init__(
        self,
        num_vars: int,
        gc_threshold: int = 1 << 18,
        cache_limit: Optional[int] = None,
        vector_threshold: int = 32,
        initial_capacity: int = 1024,
    ) -> None:
        super().__init__(num_vars, gc_threshold, cache_limit)
        cap = 4
        while cap < initial_capacity:
            cap <<= 1
        self._capacity = cap
        self._size = 2
        # Replace the list-based node store with numpy columns.
        self._level = np.full(cap, num_vars, _I64)
        self._low = np.full(cap, -1, _I64)
        self._high = np.full(cap, -1, _I64)
        self._refs = np.zeros(cap, _I64)
        self._refs[FALSE] = self._refs[TRUE] = 1
        self._parents = np.zeros(cap, _I64)
        # The unique table stays a Python dict: profiling shows dict probes
        # (~0.15us) beat open-addressed numpy probing both for the scalar
        # mk() path and for batch lookups at realistic frontier widths
        # (tens to a few thousand); mk_many still batches the reduce,
        # duplicate-collapse, and store-column writes as vector ops.  The
        # operation caches below are pure batch structures and do use the
        # vectorized table.
        self._unique: Dict[Tuple[int, int, int], int] = {}
        # Operation caches for the breadth-first engine.  Apply shares the
        # inherited ``_apply_cache`` (identical ``(op, a, b)`` keys, so the
        # narrow recursive path and the frontier engine feed each other's
        # hits).  Exist and and_exist key their quantified suffix by an
        # interned id instead of the level tuple, so they keep engine-local
        # dicts; all of them honour cache_limit.  Plain dicts throughout:
        # at realistic frontier widths batch dict probes via tolist() beat
        # open-addressed numpy probing (see VectorTable) by several times.
        self._vexist: Dict[Tuple[int, int, int], int] = {}
        self._vand_exist: Dict[Tuple[int, int, int], int] = {}
        #: Quantified-level suffixes interned to small ids so exist and
        #: and_exist cache keys fit the three-column table while keeping
        #: the reference kernel's suffix-sharing cache semantics.
        self._suffix_ids: Dict[Tuple[int, ...], int] = {}
        self.vector_threshold = vector_threshold
        # Frontier telemetry (satellite for the benchmark spans).
        self.frontier_levels = np.zeros(max(num_vars, 1), _I64)
        self.frontier_batches_vector = 0
        self.frontier_batches_scalar = 0
        self.max_frontier = 0

    # ------------------------------------------------------------------
    # Store management
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self._size - len(self._free)

    def table_stats(self) -> Dict[str, float]:
        live = self.num_nodes
        self.stats.note_live(live)
        capacity = self._capacity
        return {
            "live_nodes": live,
            "capacity": capacity,
            "free_slots": len(self._free),
            "unique_entries": len(self._unique),
            "load": live / capacity if capacity else 0.0,
            "num_vars": self._num_vars,
            "peak_live_nodes": self.stats.peak_live_nodes,
        }

    def cache_stats(self) -> Dict[str, int]:
        out = super().cache_stats()
        out["vexist"] = len(self._vexist)
        out["vand_exist"] = len(self._vand_exist)
        return out

    def _reserve(self, need: int) -> None:
        if need <= self._capacity:
            return
        cap = self._capacity
        while cap < need:
            cap *= 2
        size = self._size
        for name, fill in (
            ("_level", 0),
            ("_low", -1),
            ("_high", -1),
            ("_refs", 0),
            ("_parents", 0),
        ):
            old = getattr(self, name)
            new = np.full(cap, fill, _I64)
            new[:size] = old[:size]
            setattr(self, name, new)
        self._capacity = cap

    def mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return int(low)
        level = int(level)
        low = int(low)
        high = int(high)
        key = (level, low, high)
        node = self._unique.get(key)
        if node is not None:
            return node
        if self._free:
            node = int(self._free.pop())
        else:
            if self._size == self._capacity:
                self._reserve(self._size + 1)
            node = self._size
            self._size += 1
        self._level[node] = level
        self._low[node] = low
        self._high[node] = high
        self._refs[node] = 0
        if self._track_levels:
            self._parents[node] = 0
            self._parents[low] += 1
            self._parents[high] += 1
            self._at_level[level].add(node)
        self._unique[key] = node
        self.stats.nodes_created += 1
        return node

    def mk_many(self, level: int, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Vector ``mk``: reduce, batch unique lookup, batch insert."""
        n = len(lo)
        out = np.empty(n, _I64)
        red = lo == hi
        out[red] = lo[red]
        ni = ~red
        cnt = int(np.count_nonzero(ni))
        if cnt == 0:
            return out
        level = int(level)
        l2 = lo[ni]
        h2 = hi[ni]
        unique = self._unique
        uget = unique.get
        found = np.fromiter(
            (
                uget((level, l, h), -1)
                for l, h in zip(l2.tolist(), h2.tolist())
            ),
            _I64,
            cnt,
        )
        miss = found < 0
        if miss.any():
            ml = l2[miss]
            mh = h2[miss]
            # Collapse duplicate (low, high) pairs within the batch.
            key = (ml << 32) | mh
            _, uidx, uinv = np.unique(key, return_index=True, return_inverse=True)
            nl = ml[uidx]
            nh = mh[uidx]
            ids = self._alloc_many(level, nl, nh)
            for l, h, i in zip(nl.tolist(), nh.tolist(), ids.tolist()):
                unique[(level, l, h)] = i
            found[miss] = ids[uinv]
        out[ni] = found
        return out

    def _alloc_many(self, level: int, nl: np.ndarray, nh: np.ndarray) -> np.ndarray:
        n = len(nl)
        ids = np.empty(n, _I64)
        k = 0
        free = self._free
        if free:
            k = min(len(free), n)
            ids[:k] = [int(x) for x in free[-k:]]
            del free[-k:]
        m = n - k
        if m:
            self._reserve(self._size + m)
            ids[k:] = np.arange(self._size, self._size + m)
            self._size += m
        self._level[ids] = level
        self._low[ids] = nl
        self._high[ids] = nh
        self._refs[ids] = 0
        if self._track_levels:
            self._parents[ids] = 0
            np.add.at(self._parents, nl, 1)
            np.add.at(self._parents, nh, 1)
            self._at_level[level].update(ids.tolist())
        self.stats.nodes_created += n
        return ids

    def add_vars(self, count: int) -> None:
        if count < 0:
            raise BDDError("count must be non-negative")
        old_sentinel = self._num_vars
        self._num_vars += count
        size = self._size
        lv = self._level[:size]
        terminal = (lv == old_sentinel) & (self._low[:size] == -1)
        lv[terminal] = self._num_vars
        self._at_level.extend(set() for _ in range(count))
        self._var_at_level.extend(range(old_sentinel, self._num_vars))
        self._level_at_var.extend(range(old_sentinel, self._num_vars))
        self._count_cache.clear()
        self.frontier_levels = np.concatenate(
            (self.frontier_levels, np.zeros(count, _I64))
        )

    def _clear_caches(self) -> None:
        super()._clear_caches()
        self._vexist.clear()
        self._vand_exist.clear()
        # _suffix_ids is a pure interning map (no node references): keep.

    def _suffix_id(self, levels: Tuple[int, ...]) -> int:
        sid = self._suffix_ids.get(levels)
        if sid is None:
            sid = len(self._suffix_ids)
            self._suffix_ids[levels] = sid
        return sid

    def _vcache_insert(self, cache, k1, k2, k3, vals) -> None:
        """Batch cache insert honouring :attr:`cache_limit`."""
        if (
            self.cache_limit is not None
            and len(cache) + len(vals) > self.cache_limit
        ):
            cache.clear()
        for key in zip(k1.tolist(), k2.tolist(), k3.tolist(), vals.tolist()):
            cache[key[:3]] = key[3]

    @staticmethod
    def _vcache_lookup(cache, k1, k2, k3) -> np.ndarray:
        """Batch cache probe; -1 where missing."""
        get = cache.get
        n = len(k1)
        return np.fromiter(
            (
                get(key, -1)
                for key in zip(k1.tolist(), k2.tolist(), k3.tolist())
            ),
            _I64,
            n,
        )

    def _vcache_set(self, cache, k1, k2, k3, value) -> None:
        if self.cache_limit is not None and len(cache) >= self.cache_limit:
            cache.clear()
        cache[(k1, k2, k3)] = value

    # ------------------------------------------------------------------
    # Breadth-first frontier machinery
    # ------------------------------------------------------------------

    def frontier_profile(self) -> Dict[str, object]:
        """Telemetry snapshot of frontier activity since construction
        (or the last :meth:`reset_frontier_profile`)."""
        levels = self.frontier_levels
        nz = np.flatnonzero(levels)
        return {
            "per_level": {int(i): int(levels[i]) for i in nz},
            "total_requests": int(levels.sum()),
            "batches_vector": self.frontier_batches_vector,
            "batches_scalar": self.frontier_batches_scalar,
            "max_frontier": int(self.max_frontier),
        }

    def reset_frontier_profile(self) -> None:
        self.frontier_levels.fill(0)
        self.frontier_batches_vector = 0
        self.frontier_batches_scalar = 0
        self.max_frontier = 0

    def _note_bucket(self, level: int, width: int) -> bool:
        """Record telemetry; True when the bucket takes the vector path."""
        self.frontier_levels[level] += width
        if width > self.max_frontier:
            self.max_frontier = width
        if width < self.vector_threshold:
            self.frontier_batches_scalar += 1
            return False
        self.frontier_batches_vector += 1
        return True

    def _enqueue_pairs(self, fr, top, A, B, G) -> None:
        if len(top) == 1:
            fr.push(int(top[0]), (A, B, G))
            return
        order = np.argsort(top, kind="stable")
        ts = top[order]
        cuts = np.flatnonzero(ts[1:] != ts[:-1]) + 1
        for piece in np.split(order, cuts):
            fr.push(int(top[piece[0]]), (A[piece], B[piece], G[piece]))

    def _enqueue_singles(self, fr, top, A, G) -> None:
        if len(top) == 1:
            fr.push(int(top[0]), (A, G))
            return
        order = np.argsort(top, kind="stable")
        ts = top[order]
        cuts = np.flatnonzero(ts[1:] != ts[:-1]) + 1
        for piece in np.split(order, cuts):
            fr.push(int(top[piece[0]]), (A[piece], G[piece]))

    @staticmethod
    def _resolve_children(fr, g, v) -> np.ndarray:
        """Child values for the upward sweep: gid results where enqueued,
        immediate values elsewhere."""
        idx = np.where(g >= 0, g, 0)
        return np.where(g >= 0, fr.res[idx], v)

    # ------------------------------------------------------------------
    # apply (AND/OR/DIFF/XOR)
    # ------------------------------------------------------------------

    def _apply(self, op: int, a: int, b: int) -> int:
        a = int(a)
        b = int(b)
        # A single request pair starts with a frontier of width one: the
        # breadth-first machinery only pays off once frontiers widen, so
        # narrow calls use the reference recursion (safe while diagrams
        # are shallower than the interpreter's stack) and the
        # level-synchronized sweep is reserved for deep managers and the
        # wide batches issued by _apply_many/_run_exist/_run_and_exist.
        if self._num_vars <= _RECURSION_SAFE_VARS:
            return BDDManager._apply(self, op, a, b)
        v = _apply_shortcut(op, a, b)
        if v >= 0:
            return v
        if op != _OP_DIFF and a > b:
            a, b = b, a
        return int(self._run_apply(op, np.array([a], _I64), np.array([b], _I64))[0])

    def _apply_many(self, op: int, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        """Batch ``_apply`` over request pairs (short-cuts included)."""
        n = len(A)
        if n == 0:
            return np.empty(0, _I64)
        if n < self.vector_threshold:
            return np.fromiter(
                (self._apply(op, int(x), int(y)) for x, y in zip(A, B)),
                _I64,
                n,
            )
        out = self._shortcut_vector(op, A, B)
        unres = out < 0
        if unres.any():
            xa = A[unres]
            xb = B[unres]
            if op != _OP_DIFF:
                sw = xa > xb
                xa, xb = np.where(sw, xb, xa), np.where(sw, xa, xb)
            out[unres] = self._run_apply(op, xa, xb)
        return out

    @staticmethod
    def _shortcut_vector(op: int, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        out = np.full(len(a), -1, _I64)
        if op == _OP_AND:
            out[(a == FALSE) | (b == FALSE)] = FALSE
            eq = (a == b) & (out < 0)
            out[eq] = a[eq]
            m = (a == TRUE) & (out < 0)
            out[m] = b[m]
            m = (b == TRUE) & (out < 0)
            out[m] = a[m]
        elif op == _OP_OR:
            out[(a == TRUE) | (b == TRUE)] = TRUE
            eq = (a == b) & (out < 0)
            out[eq] = a[eq]
            m = (a == FALSE) & (out < 0)
            out[m] = b[m]
            m = (b == FALSE) & (out < 0)
            out[m] = a[m]
        elif op == _OP_DIFF:
            out[(a == FALSE) | (b == TRUE) | (a == b)] = FALSE
            m = (b == FALSE) & (out < 0)
            out[m] = a[m]
        else:  # _OP_XOR
            eq = a == b
            out[eq] = FALSE
            m = (a == FALSE) & (out < 0)
            out[m] = b[m]
            m = (b == FALSE) & (out < 0)
            out[m] = a[m]
        return out

    def _run_apply(self, op: int, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        """Resolve pre-filtered (non-shortcut, normalized) request pairs."""
        fr = _Frontier()
        n = len(A)
        fr.new_gids(n)
        lv = self._level
        top = np.minimum(lv[A], lv[B])
        self._enqueue_pairs(fr, top, A, B, np.arange(n))
        plan: list = []
        while fr.heap:
            level, chunks = fr.pop_level()
            width = sum(len(c[0]) for c in chunks)
            if self._note_bucket(level, width):
                self._apply_bucket_vector(op, fr, plan, level, chunks)
            else:
                self._apply_bucket_scalar(op, fr, plan, level, chunks)
        res = fr.res
        cl = self.cache_limit
        for rec in reversed(plan):
            if rec[0]:  # vector record
                _, level, mA, mB, gl, vl, gh, vh, G, inv, ures, misspos = rec
                lo = self._resolve_children(fr, gl, vl)
                hi = self._resolve_children(fr, gh, vh)
                r = self.mk_many(level, lo, hi)
                self._vcache_insert(
                    self._apply_cache, np.full(len(mA), op, _I64), mA, mB, r
                )
                ures[misspos] = r
                res[G] = ures[inv]
            else:
                _, level, entries = rec
                cache = self._apply_cache
                for a, b, gl, vl, gh, vh, gids in entries:
                    lo = int(res[gl]) if gl >= 0 else vl
                    hi = int(res[gh]) if gh >= 0 else vh
                    r = self.mk(level, lo, hi)
                    self._vcache_set(cache, op, a, b, r)
                    for g in gids:
                        res[g] = r
        out = fr.res[:n]
        del fr
        return out

    def _apply_bucket_scalar(self, op, fr, plan, level, chunks) -> None:
        lvl, lo, hi = self._level, self._low, self._high
        cache = self._apply_cache
        stats = self.stats
        seen: Dict[Tuple[int, int], tuple] = {}
        entries: list = []
        pending: Dict[int, list] = {}
        for chunk in chunks:
            for a, b, g in zip(*chunk):
                a = int(a)
                b = int(b)
                g = int(g)
                prev = seen.get((a, b))
                if prev is not None:
                    if prev[0] == 0:
                        # fr.res may have been reallocated by new_gids();
                        # always write through the frontier.
                        fr.res[g] = prev[1]
                    else:
                        prev[1][6].append(g)
                    continue
                v = cache.get((op, a, b), -1)
                if v >= 0:
                    stats.op_hits[op] += 1
                    fr.res[g] = v
                    seen[(a, b)] = (0, v)
                    continue
                stats.op_misses[op] += 1
                la = lvl[a]
                lb = lvl[b]
                if la == level:
                    a0, a1 = int(lo[a]), int(hi[a])
                else:
                    a0 = a1 = a
                if lb == level:
                    b0, b1 = int(lo[b]), int(hi[b])
                else:
                    b0 = b1 = b
                gl, vl = self._child_apply_scalar(op, fr, a0, b0, pending)
                gh, vh = self._child_apply_scalar(op, fr, a1, b1, pending)
                entry = [a, b, gl, vl, gh, vh, [g]]
                seen[(a, b)] = (1, entry)
                entries.append(entry)
        for clevel, lists in pending.items():
            fr.push(clevel, tuple(lists))
        if entries:
            plan.append((0, level, entries))

    def _child_apply_scalar(self, op, fr, ca, cb, pending):
        v = _apply_shortcut(op, ca, cb)
        if v >= 0:
            return -1, v
        if op != _OP_DIFF and ca > cb:
            ca, cb = cb, ca
        g = fr.new_gids(1)
        t = min(int(self._level[ca]), int(self._level[cb]))
        lists = pending.get(t)
        if lists is None:
            lists = pending[t] = ([], [], [])
        lists[0].append(ca)
        lists[1].append(cb)
        lists[2].append(g)
        return g, 0

    def _apply_bucket_vector(self, op, fr, plan, level, chunks) -> None:
        if len(chunks) == 1:
            A = np.asarray(chunks[0][0], _I64)
            B = np.asarray(chunks[0][1], _I64)
            G = np.asarray(chunks[0][2], _I64)
        else:
            A = np.concatenate([np.asarray(c[0], _I64) for c in chunks])
            B = np.concatenate([np.asarray(c[1], _I64) for c in chunks])
            G = np.concatenate([np.asarray(c[2], _I64) for c in chunks])
        key = (A << 32) | B
        _, uidx, inv = np.unique(key, return_index=True, return_inverse=True)
        uA = A[uidx]
        uB = B[uidx]
        ures = self._vcache_lookup(
            self._apply_cache, np.full(len(uA), op, _I64), uA, uB
        )
        hits = ures >= 0
        nh = int(np.count_nonzero(hits))
        self.stats.op_hits[op] += nh
        self.stats.op_misses[op] += len(uA) - nh
        misspos = np.flatnonzero(~hits)
        if misspos.size == 0:
            fr.res[G] = ures[inv]
            return
        mA = uA[misspos]
        mB = uB[misspos]
        lv, lo, hi = self._level, self._low, self._high
        onA = lv[mA] == level
        a0 = np.where(onA, lo[mA], mA)
        a1 = np.where(onA, hi[mA], mA)
        onB = lv[mB] == level
        b0 = np.where(onB, lo[mB], mB)
        b1 = np.where(onB, hi[mB], mB)
        gl, vl = self._children_apply_vector(op, fr, a0, b0)
        gh, vh = self._children_apply_vector(op, fr, a1, b1)
        plan.append((1, level, mA, mB, gl, vl, gh, vh, G, inv, ures, misspos))

    def _children_apply_vector(self, op, fr, ca, cb):
        val = self._shortcut_vector(op, ca, cb)
        unres = val < 0
        g = np.full(len(ca), -1, _I64)
        cnt = int(np.count_nonzero(unres))
        if cnt:
            xa = ca[unres]
            xb = cb[unres]
            if op != _OP_DIFF:
                sw = xa > xb
                xa, xb = np.where(sw, xb, xa), np.where(sw, xa, xb)
            start = fr.new_gids(cnt)
            gids = np.arange(start, start + cnt)
            g[unres] = gids
            lv = self._level
            top = np.minimum(lv[xa], lv[xb])
            self._enqueue_pairs(fr, top, xa, xb, gids)
        return g, val

    # ------------------------------------------------------------------
    # Fused variable insertion: ITE(var at level L, g, f) in one pass
    # ------------------------------------------------------------------
    #
    # replace() must recompose nodes whose new variable sinks below the
    # top of an already-permuted child.  Decomposing that as
    # OR(AND(v, g), DIFF(f, v)) costs three traversals and materialises
    # two throwaway intermediate diagrams; this dedicated op descends f
    # and g in lockstep once and creates only result nodes.  Results are
    # canonical, so they coincide with the three-pass decomposition
    # node-for-node.

    def _ite_var(self, L: int, f: int, g: int) -> int:
        if f == g:
            return f
        lf = int(self._level[f])
        lg = int(self._level[g])
        t = lf if lf < lg else lg
        if t > L:
            return self.mk(L, f, g)
        if t == L:
            fl = int(self._low[f]) if lf == L else f
            gh = int(self._high[g]) if lg == L else g
            return self.mk(L, fl, gh)
        key = (_ITEVAR_BASE + L, f, g)
        cache = self._apply_cache
        cached = cache.get(key)
        if cached is not None:
            self.stats.replace_hits += 1
            return cached
        self.stats.replace_misses += 1
        f0, f1 = (
            (int(self._low[f]), int(self._high[f])) if lf == t else (f, f)
        )
        g0, g1 = (
            (int(self._low[g]), int(self._high[g])) if lg == t else (g, g)
        )
        result = self.mk(
            t, self._ite_var(L, f0, g0), self._ite_var(L, f1, g1)
        )
        return self._cache_store(cache, key, result)

    def _ite_var_many(self, L: int, F: np.ndarray, G: np.ndarray) -> np.ndarray:
        n = len(F)
        if n == 0:
            return np.empty(0, _I64)
        if n < self.vector_threshold and self._num_vars <= _RECURSION_SAFE_VARS:
            return np.fromiter(
                (self._ite_var(L, int(x), int(y)) for x, y in zip(F, G)),
                _I64,
                n,
            )
        out = np.full(n, -1, _I64)
        lv = self._level
        eq = F == G
        out[eq] = F[eq]
        lf = lv[F]
        lg = lv[G]
        t = np.minimum(lf, lg)
        # F/G index pre-existing nodes, so reads through lv stay valid
        # even after mk_many below grows (reallocates) the store arrays.
        above = (~eq) & (t > L)
        if above.any():
            out[above] = self.mk_many(L, F[above], G[above])
        at = (~eq) & (t == L)
        if at.any():
            f = F[at]
            g = G[at]
            fl = np.where(lv[f] == L, self._low[f], f)
            gh = np.where(lv[g] == L, self._high[g], g)
            out[at] = self.mk_many(L, fl, gh)
        deep = out < 0
        if deep.any():
            out[deep] = self._run_ite_var(L, F[deep], G[deep])
        return out

    def _run_ite_var(self, L: int, F: np.ndarray, G: np.ndarray) -> np.ndarray:
        fr = _Frontier()
        n = len(F)
        fr.new_gids(n)
        lv = self._level
        top = np.minimum(lv[F], lv[G])
        self._enqueue_pairs(fr, top, F, G, np.arange(n))
        plan: list = []
        while fr.heap:
            level, chunks = fr.pop_level()
            width = sum(len(c[0]) for c in chunks)
            if self._note_bucket(level, width):
                self._ite_var_bucket_vector(L, fr, plan, level, chunks)
            else:
                self._ite_var_bucket_scalar(L, fr, plan, level, chunks)
        res = fr.res
        opk = _ITEVAR_BASE + L
        for rec in reversed(plan):
            if rec[0]:  # vector record
                _, level, mF, mG, gl, vl, gh, vh, Gd, inv, ures, misspos = rec
                lo = self._resolve_children(fr, gl, vl)
                hi = self._resolve_children(fr, gh, vh)
                r = self.mk_many(level, lo, hi)
                self._vcache_insert(
                    self._apply_cache, np.full(len(mF), opk, _I64), mF, mG, r
                )
                ures[misspos] = r
                res[Gd] = ures[inv]
            else:
                _, level, entries = rec
                cache = self._apply_cache
                for f, g, gl, vl, gh, vh, gids in entries:
                    lo = int(res[gl]) if gl >= 0 else vl
                    hi = int(res[gh]) if gh >= 0 else vh
                    r = self.mk(level, lo, hi)
                    self._vcache_set(cache, opk, f, g, r)
                    for gd in gids:
                        res[gd] = r
        out = fr.res[:n]
        del fr
        return out

    def _ite_var_bucket_scalar(self, L, fr, plan, level, chunks) -> None:
        lvl, low, high = self._level, self._low, self._high
        cache = self._apply_cache
        stats = self.stats
        opk = _ITEVAR_BASE + L
        seen: Dict[Tuple[int, int], tuple] = {}
        entries: list = []
        pending: Dict[int, list] = {}
        for chunk in chunks:
            for f, g, gd in zip(*chunk):
                f = int(f)
                g = int(g)
                gd = int(gd)
                prev = seen.get((f, g))
                if prev is not None:
                    if prev[0] == 0:
                        # fr.res may have been reallocated by new_gids();
                        # always write through the frontier.
                        fr.res[gd] = prev[1]
                    else:
                        prev[1][6].append(gd)
                    continue
                v = cache.get((opk, f, g), -1)
                if v >= 0:
                    stats.replace_hits += 1
                    fr.res[gd] = v
                    seen[(f, g)] = (0, v)
                    continue
                stats.replace_misses += 1
                lf = lvl[f]
                lg = lvl[g]
                if lf == level:
                    f0, f1 = int(low[f]), int(high[f])
                else:
                    f0 = f1 = f
                if lg == level:
                    g0, g1 = int(low[g]), int(high[g])
                else:
                    g0 = g1 = g
                gl, vl = self._child_ite_var_scalar(L, fr, f0, g0, pending)
                gh, vh = self._child_ite_var_scalar(L, fr, f1, g1, pending)
                entry = [f, g, gl, vl, gh, vh, [gd]]
                seen[(f, g)] = (1, entry)
                entries.append(entry)
        for clevel, lists in pending.items():
            fr.push(clevel, tuple(lists))
        if entries:
            plan.append((0, level, entries))

    def _child_ite_var_scalar(self, L, fr, cf, cg, pending):
        if cf == cg:
            return -1, cf
        lf = int(self._level[cf])
        lg = int(self._level[cg])
        t = lf if lf < lg else lg
        if t > L:
            return -1, self.mk(L, cf, cg)
        if t == L:
            fl = int(self._low[cf]) if lf == L else cf
            gh = int(self._high[cg]) if lg == L else cg
            return -1, self.mk(L, fl, gh)
        gid = fr.new_gids(1)
        lists = pending.get(t)
        if lists is None:
            lists = pending[t] = ([], [], [])
        lists[0].append(cf)
        lists[1].append(cg)
        lists[2].append(gid)
        return gid, 0

    def _ite_var_bucket_vector(self, L, fr, plan, level, chunks) -> None:
        if len(chunks) == 1:
            F = np.asarray(chunks[0][0], _I64)
            G = np.asarray(chunks[0][1], _I64)
            Gd = np.asarray(chunks[0][2], _I64)
        else:
            F = np.concatenate([np.asarray(c[0], _I64) for c in chunks])
            G = np.concatenate([np.asarray(c[1], _I64) for c in chunks])
            Gd = np.concatenate([np.asarray(c[2], _I64) for c in chunks])
        key = (F << 32) | G
        _, uidx, inv = np.unique(key, return_index=True, return_inverse=True)
        uF = F[uidx]
        uG = G[uidx]
        opk = np.full(len(uF), _ITEVAR_BASE + L, _I64)
        ures = self._vcache_lookup(self._apply_cache, opk, uF, uG)
        hits = ures >= 0
        nh = int(np.count_nonzero(hits))
        self.stats.replace_hits += nh
        self.stats.replace_misses += len(uF) - nh
        misspos = np.flatnonzero(~hits)
        if misspos.size == 0:
            fr.res[Gd] = ures[inv]
            return
        mF = uF[misspos]
        mG = uG[misspos]
        lv, lo, hi = self._level, self._low, self._high
        onF = lv[mF] == level
        f0 = np.where(onF, lo[mF], mF)
        f1 = np.where(onF, hi[mF], mF)
        onG = lv[mG] == level
        g0 = np.where(onG, lo[mG], mG)
        g1 = np.where(onG, hi[mG], mG)
        gl, vl = self._children_ite_var_vector(L, fr, f0, g0)
        gh, vh = self._children_ite_var_vector(L, fr, f1, g1)
        plan.append((1, level, mF, mG, gl, vl, gh, vh, Gd, inv, ures, misspos))

    def _children_ite_var_vector(self, L, fr, cf, cg):
        n = len(cf)
        val = np.full(n, -1, _I64)
        gout = np.full(n, -1, _I64)
        lv = self._level
        eq = cf == cg
        val[eq] = cf[eq]
        lf = lv[cf]
        lg = lv[cg]
        t = np.minimum(lf, lg)
        # cf/cg are pre-existing gids: stale reads through lv stay valid
        # across the mk_many growths below.
        above = (~eq) & (t > L)
        if above.any():
            val[above] = self.mk_many(L, cf[above], cg[above])
        at = (~eq) & (t == L)
        if at.any():
            f = cf[at]
            g = cg[at]
            fl = np.where(lv[f] == L, self._low[f], f)
            gh = np.where(lv[g] == L, self._high[g], g)
            val[at] = self.mk_many(L, fl, gh)
        unres = val < 0
        cnt = int(np.count_nonzero(unres))
        if cnt:
            xf = cf[unres]
            xg = cg[unres]
            start = fr.new_gids(cnt)
            gids = np.arange(start, start + cnt)
            gout[unres] = gids
            lv2 = self._level
            top = np.minimum(lv2[xf], lv2[xg])
            self._enqueue_pairs(fr, top, xf, xg, gids)
        return gout, val

    def apply_not(self, a: int) -> int:
        a = int(a)
        if a == FALSE:
            return TRUE
        if a == TRUE:
            return FALSE
        cached = self._not_cache.get(a)
        if cached is not None:
            self.stats.not_hits += 1
            return cached
        self.stats.not_misses += 1
        # Complement as XOR with TRUE: on deep managers this runs on the
        # breadth-first engine, so the recursion limit is never hit.
        result = self._apply(_OP_XOR, a, TRUE)
        return self._cache_store(self._not_cache, a, result)

    # ------------------------------------------------------------------
    # exist (projection)
    # ------------------------------------------------------------------

    def _exist(self, a: int, levels: Tuple[int, ...]) -> int:
        a = int(a)
        if a <= TRUE:
            return a
        if self._num_vars <= _RECURSION_SAFE_VARS:
            return self._exist_rec(a, levels)
        la = int(self._level[a])
        levels = levels[bisect_left(levels, la):]
        if not levels:
            return a
        return int(self._run_exist(np.array([a], _I64), levels)[0])

    def _exist_rec(self, a: int, levels: Tuple[int, ...]) -> int:
        # Mirror of BDDManager._exist, but keyed by the interned suffix id
        # so the narrow recursive path and the frontier engine share one
        # memo space instead of recomputing each other's results.
        if a <= TRUE:
            return a
        la = int(self._level[a])
        levels = levels[bisect_left(levels, la):]
        if not levels:
            return a
        sid = self._suffix_id(levels)
        cache = self._vexist
        key = (a, sid, 0)
        cached = cache.get(key)
        if cached is not None:
            self.stats.exist_hits += 1
            return cached
        self.stats.exist_misses += 1
        low = self._exist_rec(int(self._low[a]), levels)
        high = self._exist_rec(int(self._high[a]), levels)
        if la == levels[0]:
            result = self._apply(_OP_OR, low, high)
        else:
            result = self.mk(la, low, high)
        self._vcache_set(cache, a, sid, 0, result)
        return result

    def _run_exist(self, A: np.ndarray, levels: Tuple[int, ...]) -> np.ndarray:
        fr = _Frontier()
        n = len(A)
        fr.new_gids(n)
        self._enqueue_singles(fr, self._level[A], A, np.arange(n))
        plan: list = []
        last = levels[-1]
        while fr.heap:
            level, chunks = fr.pop_level()
            sfx = levels[bisect_left(levels, level):]
            sid = self._suffix_id(sfx)
            quant = sfx[0] == level
            width = sum(len(c[0]) for c in chunks)
            if self._note_bucket(level, width):
                self._exist_bucket_vector(fr, plan, level, chunks, sid, quant, last)
            else:
                self._exist_bucket_scalar(fr, plan, level, chunks, sid, quant, last)
        res = fr.res
        for rec in reversed(plan):
            if rec[0]:  # vector record
                _, level, quant, sid, mA, gl, vl, gh, vh, G, inv, ures, misspos = rec
                lo = self._resolve_children(fr, gl, vl)
                hi = self._resolve_children(fr, gh, vh)
                if quant:
                    r = self._apply_many(_OP_OR, lo, hi)
                else:
                    r = self.mk_many(level, lo, hi)
                self._vcache_insert(
                    self._vexist,
                    mA,
                    np.full(len(mA), sid, _I64),
                    np.zeros(len(mA), _I64),
                    r,
                )
                ures[misspos] = r
                res[G] = ures[inv]
            else:
                _, level, quant, sid, entries = rec
                cache = self._vexist
                for a, gl, vl, gh, vh, gids in entries:
                    lo = int(res[gl]) if gl >= 0 else vl
                    hi = int(res[gh]) if gh >= 0 else vh
                    if quant:
                        r = self._apply(_OP_OR, lo, hi)
                    else:
                        r = self.mk(level, lo, hi)
                    self._vcache_set(cache, a, sid, 0, r)
                    for g in gids:
                        res[g] = r
        out = fr.res[:n]
        del fr
        return out

    def _exist_bucket_scalar(self, fr, plan, level, chunks, sid, quant, last):
        lvl, low, high = self._level, self._low, self._high
        cache = self._vexist
        stats = self.stats
        seen: Dict[int, tuple] = {}
        entries: list = []
        pending: Dict[int, list] = {}

        def child(c):
            if lvl[c] > last:  # terminal or below all quantified levels
                return -1, c
            g = fr.new_gids(1)
            t = int(lvl[c])
            lists = pending.get(t)
            if lists is None:
                lists = pending[t] = ([], [])
            lists[0].append(c)
            lists[1].append(g)
            return g, 0

        for chunk in chunks:
            for a, g in zip(*chunk):
                a = int(a)
                g = int(g)
                prev = seen.get(a)
                if prev is not None:
                    if prev[0] == 0:
                        # fr.res may have been reallocated by new_gids();
                        # always write through the frontier.
                        fr.res[g] = prev[1]
                    else:
                        prev[1][5].append(g)
                    continue
                v = cache.get((a, sid, 0), -1)
                if v >= 0:
                    stats.exist_hits += 1
                    fr.res[g] = v
                    seen[a] = (0, v)
                    continue
                stats.exist_misses += 1
                gl, vl = child(int(low[a]))
                gh, vh = child(int(high[a]))
                entry = [a, gl, vl, gh, vh, [g]]
                seen[a] = (1, entry)
                entries.append(entry)
        for clevel, lists in pending.items():
            fr.push(clevel, tuple(lists))
        if entries:
            plan.append((0, level, quant, sid, entries))

    def _exist_bucket_vector(self, fr, plan, level, chunks, sid, quant, last):
        if len(chunks) == 1:
            A = np.asarray(chunks[0][0], _I64)
            G = np.asarray(chunks[0][1], _I64)
        else:
            A = np.concatenate([np.asarray(c[0], _I64) for c in chunks])
            G = np.concatenate([np.asarray(c[1], _I64) for c in chunks])
        uA, inv = np.unique(A, return_inverse=True)
        ures = self._vcache_lookup(
            self._vexist, uA, np.full(len(uA), sid, _I64), np.zeros(len(uA), _I64)
        )
        hits = ures >= 0
        nh = int(np.count_nonzero(hits))
        self.stats.exist_hits += nh
        self.stats.exist_misses += len(uA) - nh
        misspos = np.flatnonzero(~hits)
        if misspos.size == 0:
            fr.res[G] = ures[inv]
            return
        mA = uA[misspos]
        gl, vl = self._children_exist_vector(fr, self._low[mA], last)
        gh, vh = self._children_exist_vector(fr, self._high[mA], last)
        plan.append((1, level, quant, sid, mA, gl, vl, gh, vh, G, inv, ures, misspos))

    def _children_exist_vector(self, fr, c, last):
        lv = self._level[c]
        resolved = lv > last
        val = np.where(resolved, c, -1)
        g = np.full(len(c), -1, _I64)
        cnt = int(np.count_nonzero(~resolved))
        if cnt:
            unres = ~resolved
            x = c[unres]
            start = fr.new_gids(cnt)
            gids = np.arange(start, start + cnt)
            g[unres] = gids
            self._enqueue_singles(fr, lv[unres], x, gids)
        return g, val

    # ------------------------------------------------------------------
    # and_exist (relational product)
    # ------------------------------------------------------------------

    def _and_exist(self, a: int, b: int, levels: Tuple[int, ...]) -> int:
        a = int(a)
        b = int(b)
        if a == FALSE or b == FALSE:
            return FALSE
        if a == TRUE and b == TRUE:
            return TRUE
        top = min(int(self._level[a]), int(self._level[b]))
        if not levels[bisect_left(levels, top):]:
            return self._apply(_OP_AND, a, b)
        if a > b:
            a, b = b, a
        return int(
            self._run_and_exist(
                np.array([a], _I64), np.array([b], _I64), levels
            )[0]
        )

    def _run_and_exist(
        self, A: np.ndarray, B: np.ndarray, levels: Tuple[int, ...]
    ) -> np.ndarray:
        fr = _Frontier()
        n = len(A)
        fr.new_gids(n)
        lv = self._level
        top = np.minimum(lv[A], lv[B])
        self._enqueue_pairs(fr, top, A, B, np.arange(n))
        plan: list = []
        last = levels[-1]
        while fr.heap:
            level, chunks = fr.pop_level()
            sfx = levels[bisect_left(levels, level):]
            sid = self._suffix_id(sfx)
            quant = sfx[0] == level
            width = sum(len(c[0]) for c in chunks)
            if self._note_bucket(level, width):
                self._and_exist_bucket_vector(
                    fr, plan, level, chunks, sid, quant, last
                )
            else:
                self._and_exist_bucket_scalar(
                    fr, plan, level, chunks, sid, quant, last
                )
        res = fr.res
        for rec in reversed(plan):
            if rec[0]:  # vector record
                (_, level, quant, sid, mA, mB,
                 gl, vl, gh, vh, G, inv, ures, misspos) = rec
                lo = self._resolve_children(fr, gl, vl)
                hi = self._resolve_children(fr, gh, vh)
                if quant:
                    r = self._apply_many(_OP_OR, lo, hi)
                else:
                    r = self.mk_many(level, lo, hi)
                self._vcache_insert(
                    self._vand_exist, mA, mB, np.full(len(mA), sid, _I64), r
                )
                ures[misspos] = r
                res[G] = ures[inv]
            else:
                _, level, quant, sid, entries = rec
                cache = self._vand_exist
                for a, b, gl, vl, gh, vh, gids in entries:
                    lo = int(res[gl]) if gl >= 0 else vl
                    hi = int(res[gh]) if gh >= 0 else vh
                    if quant:
                        r = self._apply(_OP_OR, lo, hi)
                    else:
                        r = self.mk(level, lo, hi)
                    self._vcache_set(cache, a, b, sid, r)
                    for g in gids:
                        res[g] = r
        out = fr.res[:n]
        del fr
        return out

    def _and_exist_bucket_scalar(self, fr, plan, level, chunks, sid, quant, last):
        lvl, low, high = self._level, self._low, self._high
        cache = self._vand_exist
        stats = self.stats
        seen: Dict[Tuple[int, int], tuple] = {}
        entries: list = []
        pending: Dict[int, list] = {}

        def child(ca, cb):
            if ca == FALSE or cb == FALSE:
                return -1, FALSE
            if ca == TRUE and cb == TRUE:
                return -1, TRUE
            t = min(int(lvl[ca]), int(lvl[cb]))
            if t > last:  # no quantified levels remain: plain conjunction
                return -1, self._apply(_OP_AND, ca, cb)
            if ca > cb:
                ca, cb = cb, ca
            g = fr.new_gids(1)
            lists = pending.get(t)
            if lists is None:
                lists = pending[t] = ([], [], [])
            lists[0].append(ca)
            lists[1].append(cb)
            lists[2].append(g)
            return g, 0

        for chunk in chunks:
            for a, b, g in zip(*chunk):
                a = int(a)
                b = int(b)
                g = int(g)
                prev = seen.get((a, b))
                if prev is not None:
                    if prev[0] == 0:
                        # fr.res may have been reallocated by new_gids();
                        # always write through the frontier.
                        fr.res[g] = prev[1]
                    else:
                        prev[1][6].append(g)
                    continue
                v = cache.get((a, b, sid), -1)
                if v >= 0:
                    stats.and_exist_hits += 1
                    fr.res[g] = v
                    seen[(a, b)] = (0, v)
                    continue
                stats.and_exist_misses += 1
                la = lvl[a]
                lb = lvl[b]
                if la == level:
                    a0, a1 = int(low[a]), int(high[a])
                else:
                    a0 = a1 = a
                if lb == level:
                    b0, b1 = int(low[b]), int(high[b])
                else:
                    b0 = b1 = b
                gl, vl = child(a0, b0)
                gh, vh = child(a1, b1)
                entry = [a, b, gl, vl, gh, vh, [g]]
                seen[(a, b)] = (1, entry)
                entries.append(entry)
        for clevel, lists in pending.items():
            fr.push(clevel, tuple(lists))
        if entries:
            plan.append((0, level, quant, sid, entries))

    def _and_exist_bucket_vector(self, fr, plan, level, chunks, sid, quant, last):
        if len(chunks) == 1:
            A = np.asarray(chunks[0][0], _I64)
            B = np.asarray(chunks[0][1], _I64)
            G = np.asarray(chunks[0][2], _I64)
        else:
            A = np.concatenate([np.asarray(c[0], _I64) for c in chunks])
            B = np.concatenate([np.asarray(c[1], _I64) for c in chunks])
            G = np.concatenate([np.asarray(c[2], _I64) for c in chunks])
        key = (A << 32) | B
        _, uidx, inv = np.unique(key, return_index=True, return_inverse=True)
        uA = A[uidx]
        uB = B[uidx]
        ures = self._vcache_lookup(
            self._vand_exist, uA, uB, np.full(len(uA), sid, _I64)
        )
        hits = ures >= 0
        nh = int(np.count_nonzero(hits))
        self.stats.and_exist_hits += nh
        self.stats.and_exist_misses += len(uA) - nh
        misspos = np.flatnonzero(~hits)
        if misspos.size == 0:
            fr.res[G] = ures[inv]
            return
        mA = uA[misspos]
        mB = uB[misspos]
        lv, lo, hi = self._level, self._low, self._high
        onA = lv[mA] == level
        a0 = np.where(onA, lo[mA], mA)
        a1 = np.where(onA, hi[mA], mA)
        onB = lv[mB] == level
        b0 = np.where(onB, lo[mB], mB)
        b1 = np.where(onB, hi[mB], mB)
        gl, vl = self._children_and_exist_vector(fr, a0, b0, last)
        gh, vh = self._children_and_exist_vector(fr, a1, b1, last)
        plan.append(
            (1, level, quant, sid, mA, mB, gl, vl, gh, vh, G, inv, ures, misspos)
        )

    def _children_and_exist_vector(self, fr, ca, cb, last):
        n = len(ca)
        val = np.full(n, -1, _I64)
        val[(ca == FALSE) | (cb == FALSE)] = FALSE
        both_true = (ca == TRUE) & (cb == TRUE) & (val < 0)
        val[both_true] = TRUE
        lv = self._level
        top = np.minimum(lv[ca], lv[cb])
        anded = (val < 0) & (top > last)
        if anded.any():
            val[anded] = self._apply_many(_OP_AND, ca[anded], cb[anded])
        unres = val < 0
        g = np.full(n, -1, _I64)
        cnt = int(np.count_nonzero(unres))
        if cnt:
            xa = ca[unres]
            xb = cb[unres]
            sw = xa > xb
            xa, xb = np.where(sw, xb, xa), np.where(sw, xa, xb)
            start = fr.new_gids(cnt)
            gids = np.arange(start, start + cnt)
            g[unres] = gids
            self._enqueue_pairs(fr, top[unres], xa, xb, gids)
        return g, val

    # ------------------------------------------------------------------
    # Iterative reimplementations of recursive base-class operations
    # ------------------------------------------------------------------

    def _levelize(self, a: int) -> Tuple[Dict[int, np.ndarray], np.ndarray]:
        """Vectorized level-ordered reachability from ``a``.

        Children are always deeper than their parents, so an ascending
        sweep visits every node exactly once and buckets it by level.
        Buckets hold possibly-duplicated candidate arrays; dedup happens
        per level.  Returns ``{level: unique node array}`` (internal
        nodes only) and the visited mask (terminals pre-marked).
        """
        lvl_arr, low_arr, high_arr = self._level, self._low, self._high
        visited = np.zeros(lvl_arr.shape[0], dtype=np.bool_)
        visited[FALSE] = visited[TRUE] = True
        level_nodes: Dict[int, np.ndarray] = {}
        if a <= TRUE:
            return level_nodes, visited
        buckets: Dict[int, list] = {}
        root_level = int(lvl_arr[a])
        buckets[root_level] = [np.array([a], _I64)]
        for level in range(root_level, self._num_vars):
            parts = buckets.pop(level, None)
            if not parts:
                continue
            arr = np.unique(parts[0] if len(parts) == 1 else np.concatenate(parts))
            arr = arr[~visited[arr]]
            if arr.size == 0:
                continue
            visited[arr] = True
            level_nodes[level] = arr
            children = np.concatenate((low_arr[arr], high_arr[arr]))
            children = children[~visited[children]]
            if children.size:
                clv = lvl_arr[children]
                order = np.argsort(clv, kind="stable")
                children = children[order]
                uniq, starts = np.unique(clv[order], return_index=True)
                for child_level, chunk in zip(
                    uniq, np.split(children, starts[1:])
                ):
                    buckets.setdefault(int(child_level), []).append(chunk)
        return level_nodes, visited

    def node_count(self, a: int) -> int:
        level_nodes, _ = self._levelize(int(a))
        return sum(arr.size for arr in level_nodes.values())

    def support(self, a: int) -> frozenset:
        level_nodes, _ = self._levelize(int(a))
        return frozenset(self._var_at_level[lv] for lv in level_nodes)

    def shape(self, a: int) -> List[int]:
        counts = [0] * self._num_vars
        level_nodes, _ = self._levelize(int(a))
        for lv, arr in level_nodes.items():
            counts[lv] = arr.size
        return counts

    def replace(self, a: int, permutation: Dict[int, int]) -> int:
        perm_vars = {k: v for k, v in permutation.items() if k != v}
        if not perm_vars:
            return int(a)
        if len(set(perm_vars.values())) != len(perm_vars):
            raise BDDError("replace permutation must be injective")
        perm: Dict[int, int] = {}
        for old, new in perm_vars.items():
            self._check_var(old)
            self._check_var(new)
            perm[self._level_at_var[old]] = self._level_at_var[new]
        key_perm = tuple(sorted(perm.items()))
        a = int(a)
        if self.is_terminal(a):
            return a
        rcache = self._replace_cache
        root_cached = rcache.get((a, key_perm))
        if root_cached is not None:
            self.stats.replace_hits += 1
            return root_cached
        self.stats.replace_misses += 1
        low_arr, high_arr = self._low, self._high
        level_nodes, visited = self._levelize(a)
        support_levels = sorted(level_nodes)
        if not any(level in perm for level in support_levels):
            # The permutation does not touch the support: canonical
            # hash-consing would rebuild the identical diagram.
            self._cache_store(rcache, (a, key_perm), a)
            return a
        # Bottom-up recomposition, one batch per original level (deepest
        # first, so children are always resolved before their parents).
        # memo maps old gid -> new gid; it is sized to the store *before*
        # any growth and is only ever indexed by pre-existing gids, so
        # reallocation inside mk_many/_apply_many cannot bite.
        memo = np.zeros(visited.shape[0], dtype=_I64)
        memo[FALSE] = FALSE
        memo[TRUE] = TRUE
        for level in reversed(support_levels):
            nodes = level_nodes[level]
            new_level = perm.get(level, level)
            lo = memo[low_arr[nodes]]
            hi = memo[high_arr[nodes]]
            # Rows whose (already permuted) children still sit below the
            # new level keep the order for this slice and are a pure
            # relabelling: one mk_many.  Only rows where the new variable
            # must sink into a child diagram pay for a batched
            # if-then-else (identical decomposition to BDDManager.ite, so
            # results land on the same canonical nodes).  Child results
            # may live in newer arrays than those bound above (the store
            # grows), so read levels freshly.
            cur_lvl = self._level
            ok = (cur_lvl[lo] > new_level) & (cur_lvl[hi] > new_level)
            if ok.all():
                r = self.mk_many(new_level, lo, hi)
            else:
                r = np.empty(len(nodes), _I64)
                if ok.any():
                    r[ok] = self.mk_many(new_level, lo[ok], hi[ok])
                bad = ~ok
                r[bad] = self._ite_var_many(new_level, lo[bad], hi[bad])
            memo[nodes] = r
        result = int(memo[a])
        self._cache_store(rcache, (a, key_perm), result)
        return result

    def sat_count(self, a: int, variables: Sequence[int] | None = None) -> int:
        a = int(a)
        if variables is None:
            level_set = None
            width = self._num_vars
        else:
            level_set = frozenset(self._to_levels(variables))
            width = len(level_set)
            bad = {
                self._level_at_var[v] for v in self.support(a)
            } - level_set
            if bad:
                raise BDDError(
                    f"sat_count variables {sorted(variables)} do not cover "
                    f"support variables "
                    f"{sorted(self._var_at_level[lv] for lv in bad)}"
                )
        sorted_levels = (
            sorted(level_set) if level_set is not None else list(range(width))
        )
        rank_below: Dict[int, int] = {}
        for i, lvl in enumerate(sorted_levels):
            rank_below[lvl] = len(sorted_levels) - i - 1

        def relevant_below(level: int) -> int:
            if level >= self._num_vars:
                return -1
            if level_set is None:
                return self._num_vars - level - 1
            return rank_below[level]

        if a == FALSE:
            return 0
        if a == TRUE:
            return 1 << width
        # Counts are arbitrary-precision integers, so the arithmetic stays
        # in Python; the traversal and child/level gathers are batched per
        # level and iterated via tolist (C-speed), replacing the per-node
        # postorder walk of the reference.
        rb: List[int] = [0] * (self._num_vars + 1)
        for lvl in range(self._num_vars):
            if level_set is None or lvl in rank_below:
                rb[lvl] = relevant_below(lvl)
        rb[self._num_vars] = -1
        level_nodes, _ = self._levelize(a)
        low_arr, high_arr, lvl_arr = self._low, self._high, self._level
        memo: Dict[int, int] = {FALSE: 0, TRUE: 1}
        for level in sorted(level_nodes, reverse=True):
            nodes = level_nodes[level]
            here = rb[level]
            los = low_arr[nodes]
            his = high_arr[nodes]
            llv = lvl_arr[los]
            hlv = lvl_arr[his]
            for node, lo, hi, ll, hl in zip(
                nodes.tolist(), los.tolist(), his.tolist(),
                llv.tolist(), hlv.tolist(),
            ):
                total = 0
                c = memo[lo]
                if c:
                    total += c << (here - rb[ll] - 1)
                c = memo[hi]
                if c:
                    total += c << (here - rb[hl] - 1)
                memo[node] = total
        top_skipped = width - rb[int(self._level[a])] - 1
        return memo[a] << top_skipped

    def postorder(self, root: int) -> List[int]:
        # Plain-int node ids (callers build dict tables and wire bytes
        # from these; keep numpy scalars out of the public surface).
        return [int(n) for n in super().postorder(int(root))]

    # ------------------------------------------------------------------
    # Reordering support
    # ------------------------------------------------------------------

    def _rebuild_at_level(self) -> None:
        """Vectorized reconstruction of the per-level node index and the
        parent counters.

        Live internal nodes are exactly the allocated slots with a valid
        low edge (terminals and freed slots carry ``-1``).
        """
        ats: List[set] = [set() for _ in range(self._num_vars)]
        live = np.flatnonzero(self._low[: self._size] >= 0)
        parents = np.zeros(self._capacity, _I64)
        if live.size:
            np.add.at(parents, self._low[live], 1)
            np.add.at(parents, self._high[live], 1)
            lv = self._level[live]
            order = np.argsort(lv, kind="stable")
            live = live[order]
            ul, starts = np.unique(lv[order], return_index=True)
            for lvl, chunk in zip(ul.tolist(), np.split(live, starts[1:])):
                ats[lvl] = set(chunk.tolist())
        self._at_level = ats
        self._parents = parents

    def _enter_level_index(self) -> bool:
        """Make ``_at_level`` valid and eagerly tracked; returns the
        previous tracking flag for the paired restore."""
        prev = self._track_levels
        if not prev:
            self._rebuild_at_level()
            self._track_levels = True
        return prev

    def swap_levels(self, level: int) -> int:
        prev = self._enter_level_index()
        try:
            return super().swap_levels(level)
        finally:
            self._track_levels = prev

    def sift(self, *args, **kwargs):
        prev = self._enter_level_index()
        try:
            return super().sift(*args, **kwargs)
        finally:
            self._track_levels = prev

    def sift_groups(self, *args, **kwargs):
        prev = self._enter_level_index()
        try:
            return super().sift_groups(*args, **kwargs)
        finally:
            self._track_levels = prev

    def reorder(self, *args, **kwargs):
        prev = self._enter_level_index()
        try:
            return super().reorder(*args, **kwargs)
        finally:
            self._track_levels = prev

    def set_order(self, order: Sequence[int]) -> None:
        prev = self._enter_level_index()
        try:
            super().set_order(order)
        finally:
            self._track_levels = prev

    def _swap_adjacent(self, i: int) -> None:
        # The inherited swap binds the node arrays to locals and then
        # calls mk(); pre-reserving the worst case (two fresh nodes per
        # rewritten upper node) guarantees mk() never reallocates the
        # arrays out from under those bindings.
        self._reserve(self._size + 2 * len(self._at_level[i]) + 2)
        super()._swap_adjacent(i)

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------

    def gc(self) -> int:
        start = perf_counter()
        self.stats.note_live(self.num_nodes)
        size = self._size
        level, low, high = self._level, self._low, self._high
        marked = np.zeros(size, dtype=bool)
        roots = np.flatnonzero(self._refs[:size] > 0)
        wave = roots[roots > TRUE]
        marked[wave] = True
        while wave.size:
            kids = np.concatenate((low[wave], high[wave]))
            kids = kids[kids > TRUE]
            kids = np.unique(kids)
            kids = kids[~marked[kids]]
            marked[kids] = True
            wave = kids
        free_mask = np.zeros(size, dtype=bool)
        if self._free:
            free_mask[np.asarray(self._free, _I64)] = True
        dead = np.flatnonzero(~marked & ~free_mask)
        dead = dead[dead > TRUE]
        freed = len(dead)
        if freed:
            dlv = level[dead].copy()
            dlo = low[dead].copy()
            dhi = high[dead].copy()
            unique = self._unique
            for k in zip(dlv.tolist(), dlo.tolist(), dhi.tolist()):
                del unique[k]
            if self._track_levels:
                for lv in np.unique(dlv):
                    self._at_level[int(lv)].difference_update(
                        dead[dlv == lv].tolist()
                    )
                kids = np.concatenate((dlo, dhi))
                kids = kids[kids > TRUE]
                np.subtract.at(self._parents, kids, 1)
                self._parents[dead] = 0
            low[dead] = -1
            high[dead] = -1
            self._free.extend(dead.tolist())
        self._clear_caches()
        self.gc_count += 1
        seconds = perf_counter() - start
        stats = self.stats
        stats.gc_runs += 1
        stats.gc_seconds += seconds
        stats.last_gc_seconds = seconds
        stats.gc_reclaimed += freed
        for listener in self.gc_listeners:
            listener(seconds, freed)
        return freed

    # ------------------------------------------------------------------
    # Debugging
    # ------------------------------------------------------------------

    def check_integrity(self) -> None:
        # Same invariants as the base class, scanned over the allocated
        # prefix of the arrays (capacity beyond _size is uninitialised).
        # The level index and parent counters are lazily maintained (see
        # _track_levels): while reordering is not in flight they may be
        # arbitrarily stale, so their invariants below only bite when
        # tracking is on; rebuild first otherwise.
        if not self._track_levels:
            self._rebuild_at_level()
        free_set = set(int(n) for n in self._free)
        live = [n for n in range(2, self._size) if n not in free_set]
        parents = {n: 0 for n in range(self._size)}
        for n in live:
            lo, hi = int(self._low[n]), int(self._high[n])
            if lo == -1 or hi == -1:
                raise BDDError(f"live node {n} has freed children")
            if lo == hi:
                raise BDDError(f"node {n} is a redundant test")
            lvl = int(self._level[n])
            if not 0 <= lvl < self._num_vars:
                raise BDDError(f"node {n} has bad level {lvl}")
            for child in (lo, hi):
                parents[child] += 1
                if self._level[child] <= lvl:
                    raise BDDError(
                        f"ordering violated: node {n} (level {lvl}) -> "
                        f"{child} (level {int(self._level[child])})"
                    )
            if self._unique.get((lvl, lo, hi)) != n:
                raise BDDError(f"node {n} missing from unique table")
            if n not in self._at_level[lvl]:
                raise BDDError(f"node {n} missing from level index {lvl}")
        if len(self._unique) != len(live):
            raise BDDError(
                f"unique table has {len(self._unique)} entries for "
                f"{len(live)} live nodes"
            )
        total_indexed = sum(len(s) for s in self._at_level)
        if total_indexed != len(live):
            raise BDDError(
                f"level index holds {total_indexed} nodes, expected "
                f"{len(live)}"
            )
        for n in live:
            if self._parents[n] != parents[n]:
                raise BDDError(
                    f"node {n}: parent count {int(self._parents[n])} != "
                    f"recomputed {parents[n]}"
                )
        if sorted(self._var_at_level) != list(range(self._num_vars)):
            raise BDDError("variable order is not a permutation")
        for lvl, var in enumerate(self._var_at_level):
            if self._level_at_var[var] != lvl:
                raise BDDError("var<->level tables are not inverses")
