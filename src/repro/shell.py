"""An interactive environment for experimenting with relations.

Related work (section 6.2) describes small interactive languages for
experimenting with BDDs, such as IBEN; this module provides the same
kind of tool at Jedd's level of abstraction: a read-eval-print loop
over *relations*, using the Figure 5 expression grammar with the
runtime's dynamic checking (no physical domain annotations needed --
the runtime aligns operands automatically).

Example session::

    jedd> domain Type 64
    jedd> attribute subtype : Type
    jedd> attribute supertype : Type
    jedd> attribute tgttype : Type
    jedd> physdom T1 6
    jedd> physdom T2 6
    jedd> finalize
    jedd> rel extend subtype:T1 supertype:T2
    jedd> insert extend B A
    jedd> insert extend C B
    jedd> let up2 = (supertype=>tgttype) extend{subtype} <> extend ...

Run interactively with ``python -m repro.shell``, or feed commands via
:func:`run_script` (used by the test suite and for batch files).
"""

from __future__ import annotations

import cmd
import shlex
import sys
from typing import Dict, List, Optional

from repro import telemetry
from repro.jedd import ast
from repro.jedd.lexer import LexError
from repro.jedd.parser import ParseError, parse_expression
from repro.relations import (
    CsvFormatError,
    JeddError,
    Relation,
    Universe,
    WeightedRelation,
    ir,
)

__all__ = ["RelationalShell", "run_script", "main"]


class _ShellError(Exception):
    """User-level error; printed, does not abort the shell."""


class RelationalShell(cmd.Cmd):
    """The interactive read-eval-print loop over relations."""

    intro = (
        "Jedd relational shell (PLDI 2004 reproduction). "
        "Type help or ? for commands."
    )
    prompt = "jedd> "

    def __init__(self, stdout=None) -> None:
        super().__init__(stdout=stdout)
        self.backend = "bdd"
        self.universe: Optional[Universe] = None
        self._pending = Universe()
        self.relations: Dict[str, Relation] = {}
        #: id(VarRef node) -> delta relation, set while a `fix` command
        #: evaluates a rule semi-naively (the shell's ASTs carry no
        #: expr_ids, so occurrences are keyed by node identity).
        self._fix_override: Dict[int, Relation] = {}
        #: the query planner all shell expressions evaluate through;
        #: reset on `finalize` (plans are per-universe).
        self._planner = ir.Planner()
        #: sequence number for `agg`'s auto-named results (a1, a2, ...).
        self._agg_counter = 0
        #: background analysis service started by `serve`, if any.
        self._service = None
        #: client connection opened by `connect`, if any.
        self._remote = None
        self._remote_universe = "default"

    # -- helpers -----------------------------------------------------------

    def _say(self, text: str) -> None:
        print(text, file=self.stdout or sys.stdout)

    def _fail(self, message: str) -> None:
        self._say(f"error: {message}")

    def _need_finalized(self) -> Universe:
        if self.universe is None:
            raise _ShellError("run `finalize` first")
        return self.universe

    def _need_unfinalized(self) -> Universe:
        if self.universe is not None:
            raise _ShellError("universe already finalized")
        return self._pending

    def onecmd(self, line: str) -> bool:
        # Every command accepts the colon-prefixed spelling (":stats",
        # ":fix path |= ...") familiar from other REPLs.  Stripping the
        # prefix *here* — before cmd.Cmd dispatches — makes the rule
        # uniform instead of per-command: `:x` and `x` are the same
        # command for every x, including `help` and future additions.
        stripped = line.lstrip()
        if stripped.startswith(":") and not stripped.startswith("::"):
            line = stripped[1:]
        # cmd.Cmd splits command words at non-identifier characters, so
        # the hyphenated spelling is mapped to do_load_facts here.
        if line.lstrip().startswith("load-facts"):
            line = line.lstrip().replace("load-facts", "load_facts", 1)
        try:
            return super().onecmd(line)
        except (_ShellError, JeddError, ParseError, LexError) as err:
            self._fail(str(err))
            return False

    def default(self, line: str) -> bool:
        self._fail(f"unknown command {line.split()[0]!r} (try `help`)")
        return False

    @classmethod
    def command_names(cls) -> List[str]:
        """All command words the shell dispatches (the ``do_*`` table).

        Every one of these accepts both the bare and the ``:``-prefixed
        spelling; the table-driven spelling test iterates this list so a
        newly added command cannot regress the rule.
        """
        return sorted(
            name[len("do_"):]
            for name in dir(cls)
            if name.startswith("do_") and name != "do_EOF"
        )

    # -- declaration commands ------------------------------------------------

    def do_backend(self, arg: str) -> None:
        """backend bdd|zdd|mtbdd -- choose the diagram engine (before
        finalize); mtbdd additionally supports weighted aggregates."""
        name = arg.strip()
        if name not in ("bdd", "zdd", "mtbdd"):
            raise _ShellError("backend must be 'bdd', 'zdd', or 'mtbdd'")
        self._need_unfinalized()
        self.backend = name
        self._say(f"backend set to {name}")

    def do_domain(self, arg: str) -> None:
        """domain NAME SIZE -- declare a domain of objects."""
        parts = arg.split()
        if len(parts) != 2 or not parts[1].isdigit():
            raise _ShellError("usage: domain NAME SIZE")
        self._need_unfinalized().domain(parts[0], int(parts[1]))

    def do_attribute(self, arg: str) -> None:
        """attribute NAME : DOMAIN -- declare an attribute."""
        parts = arg.replace(":", " ").split()
        if len(parts) != 2:
            raise _ShellError("usage: attribute NAME : DOMAIN")
        u = self._need_unfinalized()
        u.attribute(parts[0], u.get_domain(parts[1]))

    def do_physdom(self, arg: str) -> None:
        """physdom NAME BITS -- declare a physical domain."""
        parts = arg.split()
        if len(parts) != 2 or not parts[1].isdigit():
            raise _ShellError("usage: physdom NAME BITS")
        self._need_unfinalized().physical_domain(parts[0], int(parts[1]))

    def do_finalize(self, arg: str) -> None:
        """finalize -- fix the bit ordering and create the manager."""
        u = self._need_unfinalized()
        # Rebuild with the chosen backend (Universe fixes backend at
        # construction; declarations are replayed).
        fresh = Universe(backend=self.backend)
        for dom in u._domains.values():
            fresh.domain(dom.name, dom.max_size)
        for attr in u._attributes.values():
            fresh.attribute(attr.name, fresh.get_domain(attr.domain.name))
        for pd in u.physical_domains():
            fresh.physical_domain(pd.name, pd.bits)
        fresh.finalize()
        self.universe = fresh
        self._planner = ir.Planner()
        if telemetry.is_enabled():
            telemetry.active().instrument_universe(fresh)
        self._say(
            f"universe ready: {fresh.manager.num_vars} diagram variables"
        )

    # -- relation commands -----------------------------------------------------

    def do_rel(self, arg: str) -> None:
        """rel NAME attr[:PD] ... -- declare an empty relation."""
        parts = arg.split()
        if len(parts) < 2:
            raise _ShellError("usage: rel NAME attr[:PD] ...")
        u = self._need_finalized()
        name = parts[0]
        attrs: List[str] = []
        pds: List[str] = []
        explicit = True
        for spec in parts[1:]:
            if ":" in spec:
                attr, pd = spec.split(":", 1)
                attrs.append(attr)
                pds.append(pd)
            else:
                attrs.append(spec)
                explicit = False
        self.relations[name] = Relation.empty(
            u, attrs, pds if explicit else None
        )

    def do_insert(self, arg: str) -> None:
        """insert NAME obj1 obj2 ... -- add one tuple to a relation."""
        parts = shlex.split(arg)
        if not parts:
            raise _ShellError("usage: insert NAME obj ...")
        rel = self._lookup(parts[0])
        names = rel.schema.names()
        if len(parts) - 1 != len(names):
            raise _ShellError(
                f"{parts[0]} has attributes {', '.join(names)}; "
                f"got {len(parts) - 1} object(s)"
            )
        row = Relation.from_tuple(
            rel.universe,
            dict(zip(names, parts[1:])),
            {n: rel.schema.physdom(n) for n in names},
        )
        self.relations[parts[0]] = rel | row

    def do_let(self, arg: str) -> None:
        """let NAME = EXPR -- evaluate a Jedd expression."""
        if "=" not in arg:
            raise _ShellError("usage: let NAME = EXPR")
        name, _, source = arg.partition("=")
        name = name.strip()
        if not name.isidentifier():
            raise _ShellError(f"bad relation name {name!r}")
        self.relations[name] = self._eval(source.strip())

    def do_fix(self, arg: str) -> None:
        """fix NAME |= EXPR [; NAME |= EXPR ...] -- saturate the rules
        to a least fixed point with semi-naive (delta) evaluation, like
        the mini-language's `fix { ... }` block."""
        source = arg.strip()
        if source.startswith("{") and source.endswith("}"):
            source = source[1:-1].strip()
        rules = []
        for piece in source.split(";"):
            piece = piece.strip()
            if not piece:
                continue
            if "|=" not in piece:
                raise _ShellError(
                    "fix rules must be `NAME |= EXPR` (only `|=` keeps "
                    "the iteration monotone)"
                )
            name, _, rhs = piece.partition("|=")
            name = name.strip()
            if not name.isidentifier():
                raise _ShellError(f"bad relation name {name!r}")
            rules.append((name, parse_expression(rhs.strip())))
        if not rules:
            raise _ShellError("usage: fix NAME |= EXPR [; NAME |= EXPR ...]")
        targets = []
        for name, _ in rules:
            if name not in targets:
                targets.append(name)
        for name, expr in rules:
            self._check_monotone(expr, set(targets), True)
        self._run_fix(targets, rules)

    def _check_monotone(
        self, expr: ast.Expr, targets: set, positive: bool
    ) -> None:
        if isinstance(expr, ast.VarRef):
            if expr.name in targets and not positive:
                raise _ShellError(
                    f"fix target {expr.name!r} used non-monotonically "
                    "(under the right operand of '-')"
                )
        elif isinstance(expr, ast.SetOp):
            self._check_monotone(expr.left, targets, positive)
            self._check_monotone(
                expr.right, targets, positive and expr.op != "-"
            )
        elif isinstance(expr, ast.JoinOp):
            self._check_monotone(expr.left, targets, positive)
            self._check_monotone(expr.right, targets, positive)
        elif isinstance(expr, ast.ReplaceOp):
            self._check_monotone(expr.operand, targets, positive)

    def _run_fix(self, targets: List[str], rules: List[tuple]) -> None:
        tel = telemetry.active()
        full = {t: self._lookup(t) for t in targets}
        delta = dict(full)
        refs_of = [
            [r for r in ast.walk_var_refs(expr) if r.name in full]
            for _, expr in rules
        ]
        iteration = 0
        while any(not delta[t].is_empty() for t in targets):
            iteration += 1
            span_args = {"iteration": iteration}
            if tel.enabled:
                for t in targets:
                    span_args[f"delta_{t}"] = delta[t].size()
            with tel.span("fix.iteration", cat="fixpoint", **span_args):
                acc: Dict[str, Optional[Relation]] = {t: None for t in targets}

                def merge(name: str, value: Relation) -> None:
                    acc[name] = (
                        value if acc[name] is None else acc[name] | value
                    )

                for (name, expr), refs in zip(rules, refs_of):
                    if not refs:
                        # Static rule: contributes once, then stabilises.
                        if iteration == 1:
                            merge(name, self._eval_ast(expr))
                        continue
                    # One evaluation per occurrence of a fixed variable,
                    # with that occurrence bound to its delta.
                    for ref in refs:
                        if delta[ref.name].is_empty():
                            continue
                        self._fix_override[id(ref)] = delta[ref.name]
                        try:
                            merge(name, self._eval_ast(expr))
                        finally:
                            del self._fix_override[id(ref)]
                for t in targets:
                    if acc[t] is None:
                        delta[t] = full[t] - full[t]
                        continue
                    fresh = acc[t] - full[t]
                    delta[t] = fresh
                    if not fresh.is_empty():
                        full[t] = full[t] | fresh
                        self.relations[t] = full[t]
        self._say(
            f"fixed point after {iteration} iteration(s): "
            + ", ".join(f"{t}={full[t].size()}" for t in targets)
        )

    def do_explain(self, arg: str) -> None:
        """explain EXPR -- evaluate and show the planner's chosen
        schedule for every product, with per-step cost estimates next to
        the actual cardinalities and node counts."""
        source = arg.strip()
        if not source:
            raise _ShellError("usage: explain EXPR")
        expr = parse_expression(source)
        reports: List[ir.PlanReport] = []
        rel = self._eval_ast(expr, collect=reports)
        self._say(ir.format_reports(reports))
        self._say(
            f"result: {rel.size()} tuples, {rel.node_count()} nodes"
        )

    def do_print(self, arg: str) -> None:
        """print EXPR -- show a relation's tuples (aggregate
        expressions like `count pt.p group by v` print their weights)."""
        self._say(str(self._eval(arg.strip())))

    def do_agg(self, arg: str) -> None:
        """agg AGG EXPR[.attr] [group by a, ...] -- evaluate an
        aggregate and keep the weighted result under an auto-generated
        name (a1, a2, ..., in the codd style)."""
        source = arg.strip()
        if not source:
            raise _ShellError(
                "usage: agg AGG EXPR[.attr] [group by a, ...]"
            )
        expr = parse_expression(source)
        if not isinstance(expr, ast.AggregateOp):
            raise _ShellError(
                "agg needs an aggregate expression "
                "(count/sum/max/min/mean)"
            )
        result = self._eval_ast(expr)
        self._agg_counter += 1
        name = f"a{self._agg_counter}"
        self.relations[name] = result
        self._say(f"{name}:")
        self._say(str(result))

    def do_count(self, arg: str) -> None:
        """count EXPR -- cardinality via one satcount pass over the
        diagram (no tuple enumeration)."""
        rel = self._eval(arg.strip())
        if isinstance(rel, WeightedRelation):
            self._say(str(rel.size()))
        else:
            self._say(str(rel.count()))

    def do_size(self, arg: str) -> None:
        """size EXPR -- number of tuples."""
        self._say(str(self._eval(arg.strip()).size()))

    def do_nodes(self, arg: str) -> None:
        """nodes EXPR -- diagram node count."""
        self._say(str(self._eval(arg.strip()).node_count()))

    def do_list(self, arg: str) -> None:
        """list -- show all named relations."""
        for name in sorted(self.relations):
            rel = self.relations[name]
            kind = (
                " (weighted)" if isinstance(rel, WeightedRelation) else ""
            )
            self._say(
                f"{name:16s} {rel.schema!r}  {rel.size()} tuples, "
                f"{rel.node_count()} nodes{kind}"
            )

    def do_load_facts(self, arg: str) -> None:
        """load-facts FILE NAME attr[:PD] ... [--header] [--skip]
        [--delim=C] [--int=a,b] [--float=a,b] -- bulk-load CSV rows
        into a new relation.  With --header the first line names the
        columns (any order); --skip drops malformed rows instead of
        failing with the line report; --int/--float convert the named
        columns to numbers (so they can be aggregated)."""
        parts = shlex.split(arg)
        has_header = False
        on_malformed = "error"
        delimiter = ","
        converters: Dict[str, object] = {}
        words: List[str] = []
        for p in parts:
            if p == "--header":
                has_header = True
            elif p == "--skip":
                on_malformed = "skip"
            elif p.startswith("--delim="):
                delimiter = p[len("--delim="):]
            elif p.startswith("--int="):
                for a in p[len("--int="):].split(","):
                    converters[a] = int
            elif p.startswith("--float="):
                for a in p[len("--float="):].split(","):
                    converters[a] = float
            elif p.startswith("--"):
                raise _ShellError(f"unknown flag {p!r}")
            else:
                words.append(p)
        if len(words) < 3:
            raise _ShellError(
                "usage: load-facts FILE NAME attr[:PD] ... "
                "[--header] [--skip] [--delim=C]"
            )
        u = self._need_finalized()
        path, name = words[0], words[1]
        if not name.isidentifier():
            raise _ShellError(f"bad relation name {name!r}")
        attrs: List[str] = []
        pds: List[str] = []
        explicit = True
        for spec in words[2:]:
            if ":" in spec:
                attr, pd = spec.split(":", 1)
                attrs.append(attr)
                pds.append(pd)
            else:
                attrs.append(spec)
                explicit = False
        try:
            rel = Relation.from_csv(
                u,
                path,
                attrs,
                pds if explicit else None,
                delimiter=delimiter,
                has_header=has_header,
                converters=converters or None,
                on_malformed=on_malformed,
            )
        except OSError as err:
            raise _ShellError(f"cannot read {path}: {err}") from None
        except CsvFormatError as err:
            raise _ShellError(str(err)) from None
        self.relations[name] = rel
        self._say(f"{name}: loaded {rel.count()} tuple(s) from {path}")

    # -- persistence and service commands -------------------------------------

    def do_save(self, arg: str) -> None:
        """save FILE -- checkpoint the universe and all named relations
        to a self-contained file (see docs/SERVICE.md for the format)."""
        path = arg.strip()
        if not path:
            raise _ShellError("usage: save FILE")
        u = self._need_finalized()
        # Weighted aggregate results are derived artifacts the JDDU
        # container cannot hold; keep the checkpoint to the relations
        # they were computed from.
        saveable = {
            n: r
            for n, r in self.relations.items()
            if not isinstance(r, WeightedRelation)
        }
        skipped = len(self.relations) - len(saveable)
        try:
            count = u.save(path, saveable)
        except OSError as err:
            raise _ShellError(f"cannot save {path}: {err}") from None
        note = (
            f" (skipped {skipped} weighted aggregate result(s))"
            if skipped
            else ""
        )
        self._say(
            f"saved {len(saveable)} relation(s), {count} bytes{note}"
        )

    def do_load(self, arg: str) -> None:
        """load FILE -- restore a universe checkpoint written by `save`
        (replaces the current universe and relations)."""
        path = arg.strip()
        if not path:
            raise _ShellError("usage: load FILE")
        try:
            universe, relations = Universe.load(path)
        except OSError as err:
            raise _ShellError(f"cannot load {path}: {err}") from None
        self.universe = universe
        self.backend = universe.backend_name
        self.relations = relations
        self._planner = ir.Planner()
        if telemetry.is_enabled():
            telemetry.active().instrument_universe(universe)
        self._say(
            f"loaded {len(relations)} relation(s); universe ready: "
            f"{universe.manager.num_vars} diagram variables"
        )

    def do_serve(self, arg: str) -> None:
        """serve [PORT] -- start the analysis service in the background
        (`python -m repro.service` runs it in the foreground)."""
        from repro.service import start_in_thread

        if self._service is not None:
            raise _ShellError("service already running (quit to stop)")
        spec = arg.strip()
        if spec and not spec.isdigit():
            raise _ShellError("usage: serve [PORT]")
        handle = start_in_thread(port=int(spec) if spec else 0)
        self._service = handle
        self._say(f"serving on {handle.host}:{handle.port}")

    def do_connect(self, arg: str) -> None:
        """connect HOST:PORT [UNIVERSE] -- attach to a running service;
        `remote LINE` then runs shell commands there."""
        from repro.service import ServiceClient

        parts = arg.split()
        if not parts or ":" not in parts[0] or len(parts) > 2:
            raise _ShellError("usage: connect HOST:PORT [UNIVERSE]")
        host, _, port = parts[0].rpartition(":")
        if not port.isdigit():
            raise _ShellError("usage: connect HOST:PORT [UNIVERSE]")
        if self._remote is not None:
            self._remote.close()
        self._remote = ServiceClient(host, int(port))
        self._remote_universe = parts[1] if len(parts) == 2 else "default"
        info = self._remote.open(self._remote_universe)
        self._say(
            f"connected to {parts[0]}, universe "
            f"{self._remote_universe!r} "
            f"({'new' if info['created'] else 'existing'})"
        )

    def do_disconnect(self, arg: str) -> None:
        """disconnect -- drop the `connect`-ed service session."""
        if self._remote is None:
            raise _ShellError("not connected")
        self._remote.close()
        self._remote = None
        self._say("disconnected")

    def do_remote(self, arg: str) -> None:
        """remote LINE -- run one shell command on the connected
        service's universe and print its output."""
        if self._remote is None:
            raise _ShellError("run `connect HOST:PORT` first")
        if not arg.strip():
            raise _ShellError("usage: remote LINE")
        output = self._remote.shell(self._remote_universe, arg)
        if output:
            for piece in output.rstrip("\n").split("\n"):
                self._say(piece)

    # -- telemetry commands ----------------------------------------------------

    def do_telemetry(self, arg: str) -> None:
        """telemetry on|off|status -- toggle the telemetry session
        (kernel metrics + span tracing; also reachable as `:telemetry`)."""
        mode = arg.strip() or "status"
        if mode == "on":
            session = telemetry.enable()
            if self.universe is not None:
                session.instrument_universe(self.universe)
            self._say("telemetry on")
        elif mode == "off":
            telemetry.disable()
            self._say("telemetry off")
        elif mode == "status":
            session = telemetry.active()
            if not session.enabled:
                self._say("telemetry is off")
                return
            tracer = session.tracer
            line = f"telemetry is on: {len(tracer.spans)} spans"
            if tracer.dropped:
                line += (
                    f", {tracer.dropped} dropped"
                    f" (max_spans={tracer.max_spans})"
                )
            lanes = session.worker_lanes()
            if lanes:
                wdropped = sum(l["dropped"] for l in lanes)
                line += (
                    f"; {len(lanes)} worker lanes, "
                    f"{sum(len(l['spans']) for l in lanes)} worker spans"
                )
                if wdropped:
                    line += f" ({wdropped} dropped)"
            self._say(line)
        else:
            raise _ShellError("usage: telemetry on|off|status")

    def _need_telemetry(self):
        session = telemetry.active()
        if not session.enabled:
            raise _ShellError("telemetry is off; run `telemetry on` first")
        return session

    def do_stats(self, arg: str) -> None:
        """stats [PREFIX] -- print the metrics snapshot (also `:stats`);
        PREFIX filters metric names (e.g. `stats bdd.apply`)."""
        session = self._need_telemetry()
        prefix = arg.strip()
        snapshot = session.metrics_snapshot()
        shown = 0
        width = max((len(k) for k in snapshot), default=0)
        for name in sorted(snapshot):
            if prefix and not name.startswith(prefix):
                continue
            value = snapshot[name]
            if isinstance(value, float) and not value.is_integer():
                self._say(f"{name:<{width}}  {value:.6f}")
            else:
                self._say(f"{name:<{width}}  {int(value)}")
            shown += 1
        if not shown:
            self._say(f"(no metrics matching {prefix!r})")

    def do_trace(self, arg: str) -> None:
        """trace FILE -- write the collected spans as Chrome trace-event
        JSON, loadable in chrome://tracing or Perfetto (also `:trace`)."""
        session = self._need_telemetry()
        path = arg.strip()
        if not path:
            raise _ShellError("usage: trace FILE")
        count = session.write_chrome_trace(path, process_name="repro-shell")
        self._say(f"wrote {count} trace events to {path}")

    def do_metrics(self, arg: str) -> None:
        """metrics [FILE] -- emit the session metrics in Prometheus text
        exposition format (also `:metrics`); with FILE, write the
        exposition there plus a FILE.json snapshot for
        `python -m repro.telemetry.top --file FILE.json`."""
        session = self._need_telemetry()
        from repro.telemetry.sampler import Sampler

        Sampler(session).sample()  # fold in point-in-time gauges (RSS...)
        text = session.prometheus_text()
        path = arg.strip()
        if not path:
            for line in text.splitlines():
                self._say(line)
            return
        import json as _json

        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        with open(path + ".json", "w", encoding="utf-8") as fh:
            _json.dump(session.json_snapshot(), fh, sort_keys=True)
        self._say(f"wrote metrics exposition to {path} (+ {path}.json)")

    def do_quit(self, arg: str) -> bool:
        """quit -- leave the shell (stops `serve`, drops `connect`)."""
        if self._remote is not None:
            self._remote.close()
            self._remote = None
        if self._service is not None:
            self._service.stop()
            self._service = None
        return True

    do_exit = do_quit
    do_EOF = do_quit

    def emptyline(self) -> bool:
        return False

    # -- expression evaluation ----------------------------------------------------

    def _lookup(self, name: str) -> Relation:
        rel = self.relations.get(name)
        if rel is None:
            raise _ShellError(f"no relation {name!r}")
        return rel

    def _eval(self, source: str) -> Relation:
        # A bare name bound to a weighted aggregate result is readable
        # directly (print/count/size); only *composing* it is an error.
        name = source.strip()
        if name.isidentifier() and isinstance(
            self.relations.get(name), WeightedRelation
        ):
            return self.relations[name]
        expr = parse_expression(source)
        return self._eval_ast(expr)

    def _lower_ast(
        self, expr: ast.Expr, env: Dict[str, Relation], counter: List[int]
    ) -> ir.Node:
        """Lower a shell expression to the relational IR, binding each
        leaf to its relation in ``env``.  The shell has no static domain
        assignment, so no wrapper replaces appear and nested joins
        flatten freely for the planner."""
        u = self._need_finalized()
        if isinstance(expr, ast.VarRef):
            override = self._fix_override.get(id(expr))
            rel = override if override is not None else self._lookup(expr.name)
            if isinstance(rel, WeightedRelation):
                raise _ShellError(
                    f"{expr.name!r} is a weighted aggregate result; "
                    "it cannot be used as a relational operand"
                )
            slot = f"s{counter[0]}"
            counter[0] += 1
            env[slot] = rel
            return ir.leaf(slot, rel.schema.names())
        if isinstance(expr, ast.ConstRel):
            raise _ShellError(
                "0B/1B need a schema; use `rel` to declare one"
            )
        if isinstance(expr, ast.NewRel):
            values = {}
            for piece in expr.pieces:
                if not piece.is_string:
                    raise _ShellError(
                        "shell literals must use quoted strings"
                    )
                values[piece.attr] = piece.value
            rel = Relation.from_tuple(u, values)
            slot = f"s{counter[0]}"
            counter[0] += 1
            env[slot] = rel
            return ir.leaf(slot, rel.schema.names())
        if isinstance(expr, ast.SetOp):
            left = self._lower_ast(expr.left, env, counter)
            right = self._lower_ast(expr.right, env, counter)
            ctor = {"|": ir.union, "&": ir.intersect, "-": ir.diff}[expr.op]
            return ctor(left, right)
        if isinstance(expr, ast.JoinOp):
            left = self._lower_ast(expr.left, env, counter)
            right = self._lower_ast(expr.right, env, counter)
            return ir.positional_join(
                left,
                right,
                expr.left_attrs,
                expr.right_attrs,
                expr.op == "><",
            )
        if isinstance(expr, ast.ReplaceOp):
            node = self._lower_ast(expr.operand, env, counter)
            for rep in expr.replacements:
                if not rep.targets:
                    node = ir.project(node, (rep.source,))
                elif len(rep.targets) == 1:
                    node = ir.rename(node, {rep.source: rep.targets[0]})
                else:
                    node = ir.copy(node, rep.source, rep.targets)
            return node
        if isinstance(expr, ast.AggregateOp):
            node = self._lower_ast(expr.operand, env, counter)
            return ir.aggregate(
                node,
                expr.agg,
                attr=expr.attr,
                group_by=tuple(expr.group_by),
            )
        raise _ShellError(f"cannot evaluate {type(expr).__name__}")

    def _eval_ast(
        self, expr: ast.Expr, collect: Optional[list] = None
    ) -> Relation:
        u = self._need_finalized()
        env: Dict[str, Relation] = {}
        node = self._lower_ast(expr, env, [0])
        ctx = ir.EvalContext(
            u, env, planner=self._planner, collect=collect
        )
        return ir.evaluate(node, ctx)


def run_script(lines: List[str], stdout=None) -> RelationalShell:
    """Execute shell commands non-interactively; returns the shell."""
    shell = RelationalShell(stdout=stdout)
    for line in lines:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if shell.onecmd(line):
            break
    return shell


def main() -> None:  # pragma: no cover - interactive entry point
    """Entry point for ``python -m repro.shell``."""
    RelationalShell().cmdloop()


if __name__ == "__main__":  # pragma: no cover
    main()
