"""The shared relational universe for the whole-program analyses.

All five analyses of Figure 2 operate over the same domains (types,
signatures, methods, variables, allocation sites, fields, call sites)
and communicate through relations, so they share one universe.  The
physical domains declared here match the ones the Jedd sources in
``repro.analyses.jedd_sources`` specify.
"""

from __future__ import annotations

from typing import Dict

from repro.analyses.facts import ProgramFacts
from repro.relations import Relation, Universe

__all__ = ["AnalysisUniverse"]


def _bits_for(count: int) -> int:
    return max(1, (max(count, 2) - 1).bit_length())


class AnalysisUniverse:
    """Universe + input relations for one program's facts."""

    def __init__(
        self,
        facts: ProgramFacts,
        backend: str = "bdd",
        ordering: str = "interleaved",
        reorder: bool = False,
        reorder_threshold: int = 1 << 14,
        kernel: str | None = None,
    ) -> None:
        self.facts = facts
        u = Universe(backend=backend, ordering=ordering, kernel=kernel)
        self.universe = u
        counts = facts.counts()
        type_bits = _bits_for(counts["classes"])
        sig_bits = _bits_for(counts["signatures"])
        # methods: one per declaration plus a "no target" margin
        method_bits = _bits_for(len(facts.methods) + 1)
        var_bits = _bits_for(counts["variables"] + 1)
        obj_bits = _bits_for(counts["alloc_sites"] + 1)
        field_bits = _bits_for(counts["fields"] + 1)
        site_bits = _bits_for(counts["virtual_calls"] + 1)

        self.types = u.domain("Type", 1 << type_bits)
        self.sigs = u.domain("Signature", 1 << sig_bits)
        self.methods = u.domain("Method", 1 << method_bits)
        self.vars = u.domain("Var", 1 << var_bits)
        self.objs = u.domain("Obj", 1 << obj_bits)
        self.fields = u.domain("Field", 1 << field_bits)
        self.sites = u.domain("Site", 1 << site_bits)

        # Attributes (one namespace across the analyses, as in Jedd).
        for name, dom in [
            ("type", self.types), ("subtype", self.types),
            ("supertype", self.types), ("rectype", self.types),
            ("tgttype", self.types),
            ("signature", self.sigs),
            ("method", self.methods), ("caller", self.methods),
            ("callee", self.methods), ("tgtmethod", self.methods),
            ("var", self.vars), ("srcvar", self.vars),
            ("dstvar", self.vars), ("basevar", self.vars),
            ("obj", self.objs), ("baseobj", self.objs),
            ("srcobj", self.objs),
            ("field", self.fields),
            ("site", self.sites),
        ]:
            u.attribute(name, dom)

        # Physical domains: a few per bit-width, as a Jedd user would
        # declare.  Two or three per domain family suffice for every
        # operation in the five analyses.
        for name, bits in [
            ("T1", type_bits), ("T2", type_bits), ("T3", type_bits),
            ("S1", sig_bits), ("S2", sig_bits),
            ("M1", method_bits), ("M2", method_bits),
            ("V1", var_bits), ("V2", var_bits), ("V3", var_bits),
            ("H1", obj_bits), ("H2", obj_bits), ("H3", obj_bits),
            ("F1", field_bits),
            ("C1", site_bits),
        ]:
            u.physical_domain(name, bits)
        # The user-specified relative bit ordering (section 3.2.1):
        # interleave within each domain family (so e.g. the two sides of
        # an assignment edge share subtrees) but keep families in blocks
        # -- the layout a tuned hand-coded solver uses.
        u.set_bit_order([
            ["V1", "V2", "V3"],
            ["H1", "H2", "H3"],
            ["F1"],
            ["T1", "T2", "T3"],
            ["S1", "S2"],
            ["M1", "M2"],
            ["C1"],
        ])
        u.finalize()
        if reorder:
            # Dynamic sifting on node-table growth, with each physical
            # domain's bits moving as a block so the hand-tuned bit
            # order above stays coherent.  Raises UnsupportedByBackend
            # on the ZDD backend.
            u.enable_reorder(threshold=reorder_threshold)

        # Pre-intern all objects so attribute copying (which needs the
        # interned value list) covers the full program.
        for cls in facts.classes:
            self.types.intern(cls)
        for sig in facts.signatures:
            self.sigs.intern(sig)
        for m in facts.methods:
            self.methods.intern(m)
        for v in facts.variables:
            self.vars.intern(v)
        for _, site in facts.allocs:
            self.objs.intern(site)
        for f in facts.fields:
            self.fields.intern(f)
        for site, _, _ in facts.virtual_calls:
            self.sites.intern(site)

    # -- input relations ---------------------------------------------------

    def rel(self, attrs, rows, pds=None) -> Relation:
        """Build a relation over this universe (thin wrapper)."""
        return Relation.from_tuples(self.universe, attrs, rows, pds)

    def extend(self) -> Relation:
        """(subtype, supertype): the immediate-superclass relation."""
        return self.rel(
            ["subtype", "supertype"], self.facts.extends, ["T1", "T2"]
        )

    def declares_method(self) -> Relation:
        """(type, signature, method): Figure 3's declaresMethod."""
        return self.rel(
            ["type", "signature", "method"],
            self.facts.declares,
            ["T1", "S1", "M1"],
        )

    def alloc(self) -> Relation:
        """(var, obj): allocation sites."""
        return self.rel(["var", "obj"], self.facts.allocs, ["V1", "H1"])

    def alloc_type(self) -> Relation:
        """(obj, type): runtime type of each allocation site."""
        return self.rel(
            ["obj", "type"], self.facts.alloc_types, ["H1", "T1"]
        )

    def assign(self) -> Relation:
        """(dstvar, srcvar): simple assignments dst = src."""
        return self.rel(
            ["dstvar", "srcvar"], self.facts.assigns, ["V1", "V2"]
        )

    def store(self) -> Relation:
        """(basevar, field, srcvar): base.f = src."""
        return self.rel(
            ["basevar", "field", "srcvar"], self.facts.stores,
            ["V1", "F1", "V2"],
        )

    def load(self) -> Relation:
        """(dstvar, basevar, field): dst = base.f."""
        return self.rel(
            ["dstvar", "basevar", "field"], self.facts.loads,
            ["V1", "V2", "F1"],
        )

    def virtual_calls(self) -> Relation:
        """(site, var, signature): virtual call sites and receivers."""
        return self.rel(
            ["site", "var", "signature"],
            self.facts.virtual_calls,
            ["C1", "V1", "S1"],
        )

    def site_method(self) -> Relation:
        """(site, caller): enclosing method of each call site."""
        return self.rel(
            ["site", "caller"], self.facts.site_methods, ["C1", "M1"]
        )

    def method_var(self) -> Relation:
        """(method, var): variables owned by each method."""
        return self.rel(
            ["method", "var"], self.facts.method_vars, ["M1", "V1"]
        )
