"""Synthetic whole-program fact bases (the Soot substitute).

The paper's five analyses run inside the Soot framework over real Java
benchmarks (javac, compress, sablecc, jedit).  Those inputs are not
reproducible here, so this module synthesises Soot-style program facts
with the same *shape*: a single-inheritance class hierarchy, methods
with overriding, virtual call sites with receiver variables, allocation
sites, variable assignments, and field loads/stores.  The generator is
deterministic for a given seed, and the named presets are sized roughly
like the paper's benchmarks (small to large).

The facts are plain Python data; ``repro.analyses.relations_of`` turns
them into input relations for the BDD analyses, and the naive reference
implementations in each analysis module consume them directly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

__all__ = ["ProgramFacts", "synthesize", "PRESETS", "preset"]


@dataclass
class ProgramFacts:
    """A whole program as relational facts.

    Naming: classes ``C0..``, signatures ``m0()..``, methods
    ``C3.m1()``, variables ``v12``, allocation sites ``o7``, fields
    ``f2``, call sites ``s5``.
    """

    name: str
    classes: List[str] = field(default_factory=list)
    #: immediate superclass pairs (sub, sup)
    extends: List[Tuple[str, str]] = field(default_factory=list)
    #: (class, signature, method) -- class declares method with signature
    declares: List[Tuple[str, str, str]] = field(default_factory=list)
    #: (variable, declared class of the variable's containing method)
    variables: List[str] = field(default_factory=list)
    #: (variable, declared type) -- for type-filtered points-to
    var_types: List[Tuple[str, str]] = field(default_factory=list)
    #: (variable, allocation site)
    allocs: List[Tuple[str, str]] = field(default_factory=list)
    #: (allocation site, runtime type)
    alloc_types: List[Tuple[str, str]] = field(default_factory=list)
    #: (destination variable, source variable): dst = src
    assigns: List[Tuple[str, str]] = field(default_factory=list)
    #: (base variable, field, source variable): base.f = src
    stores: List[Tuple[str, str, str]] = field(default_factory=list)
    #: (destination variable, base variable, field): dst = base.f
    loads: List[Tuple[str, str, str]] = field(default_factory=list)
    #: (call site, receiver variable, signature)
    virtual_calls: List[Tuple[str, str, str]] = field(default_factory=list)
    #: (call site, enclosing method)
    site_methods: List[Tuple[str, str]] = field(default_factory=list)
    #: (method, variable): variable belongs to method (for side effects)
    method_vars: List[Tuple[str, str]] = field(default_factory=list)
    fields: List[str] = field(default_factory=list)
    signatures: List[str] = field(default_factory=list)
    methods: List[str] = field(default_factory=list)

    # -- derived helpers --------------------------------------------------

    def superclass(self) -> Dict[str, str]:
        """Immediate-superclass map (root C0 absent)."""
        return {sub: sup for sub, sup in self.extends}

    def ancestors(self, cls: str) -> List[str]:
        """cls itself followed by its proper ancestors, root last."""
        chain = [cls]
        sup = self.superclass()
        while chain[-1] in sup:
            chain.append(sup[chain[-1]])
        return chain

    def declares_map(self) -> Dict[Tuple[str, str], str]:
        """(class, signature) -> declared method lookup table."""
        return {(c, s): m for c, s, m in self.declares}

    def resolve(self, cls: str, signature: str) -> str | None:
        """Walk up the hierarchy (the Figure 4 algorithm, reference)."""
        table = self.declares_map()
        for anc in self.ancestors(cls):
            method = table.get((anc, signature))
            if method is not None:
                return method
        return None

    def counts(self) -> Dict[str, int]:
        """Size summary of the fact base (used to size universes)."""
        return {
            "classes": len(self.classes),
            "signatures": len(self.signatures),
            "methods": len(self.methods),
            "variables": len(self.variables),
            "alloc_sites": len(self.allocs),
            "assigns": len(self.assigns),
            "stores": len(self.stores),
            "loads": len(self.loads),
            "virtual_calls": len(self.virtual_calls),
            "fields": len(self.fields),
        }


def synthesize(
    name: str,
    n_classes: int = 20,
    n_signatures: int = 12,
    methods_per_class: float = 3.0,
    vars_per_method: float = 3.0,
    allocs_per_method: float = 1.2,
    assigns_per_method: float = 2.5,
    field_ops_per_method: float = 1.0,
    calls_per_method: float = 1.5,
    n_fields: int = 8,
    seed: int = 0,
) -> ProgramFacts:
    """Generate a deterministic synthetic program.

    The hierarchy is a random tree rooted at ``C0`` (the Object stand-in).
    Every class declares a random subset of signatures (overriding
    whatever its ancestors declare).  Method bodies allocate objects of
    random concrete classes, copy variables, read/write fields, and make
    virtual calls through receiver variables.
    """
    rng = random.Random(seed)
    facts = ProgramFacts(name=name)
    facts.classes = [f"C{i}" for i in range(n_classes)]
    facts.signatures = [f"m{i}()" for i in range(n_signatures)]
    facts.fields = [f"f{i}" for i in range(n_fields)]
    # Single-inheritance tree rooted at C0.
    for i in range(1, n_classes):
        parent = rng.randrange(i)
        facts.extends.append((f"C{i}", f"C{parent}"))
    # Method declarations; C0 declares a base set so resolution mostly
    # succeeds.
    base = rng.sample(
        facts.signatures, max(1, min(n_signatures, int(methods_per_class)))
    )
    for sig in base:
        method = f"C0.{sig}"
        facts.declares.append(("C0", sig, method))
        facts.methods.append(method)
    for cls in facts.classes[1:]:
        k = max(0, min(n_signatures, int(rng.gauss(methods_per_class, 1))))
        for sig in rng.sample(facts.signatures, k):
            method = f"{cls}.{sig}"
            facts.declares.append((cls, sig, method))
            facts.methods.append(method)
    # Descendant table (class -> all classes at or below it), used to
    # keep allocations compatible with declared variable types.
    descendants: Dict[str, List[str]] = {c: [c] for c in facts.classes}
    for cls in facts.classes:
        for anc in facts.ancestors(cls)[1:]:
            descendants[anc].append(cls)
    # Per-method bodies.
    var_counter = 0
    site_counter = 0
    obj_counter = 0
    for method in facts.methods:
        local_vars: List[str] = []
        n_vars = max(1, int(rng.gauss(vars_per_method, 1)))
        for _ in range(n_vars):
            v = f"v{var_counter}"
            var_counter += 1
            local_vars.append(v)
            facts.variables.append(v)
            facts.method_vars.append((method, v))
            facts.var_types.append((v, rng.choice(facts.classes)))
        declared = dict(facts.var_types)
        for _ in range(_poissonish(rng, allocs_per_method)):
            v = rng.choice(local_vars)
            site = f"o{obj_counter}"
            obj_counter += 1
            # A Java assignment v = new T() requires T <: declared(v).
            cls = rng.choice(descendants[declared[v]])
            facts.allocs.append((v, site))
            facts.alloc_types.append((site, cls))
        for _ in range(_poissonish(rng, assigns_per_method)):
            dst, src = rng.choice(local_vars), rng.choice(local_vars)
            if dst != src:
                facts.assigns.append((dst, src))
        for _ in range(_poissonish(rng, field_ops_per_method)):
            f = rng.choice(facts.fields)
            base_v = rng.choice(local_vars)
            other = rng.choice(local_vars)
            if rng.random() < 0.5:
                facts.stores.append((base_v, f, other))
            else:
                facts.loads.append((other, base_v, f))
        for _ in range(_poissonish(rng, calls_per_method)):
            site = f"s{site_counter}"
            site_counter += 1
            recv = rng.choice(local_vars)
            sig = rng.choice(facts.signatures)
            facts.virtual_calls.append((site, recv, sig))
            facts.site_methods.append((site, method))
    # Cross-method assignments (parameter/return value flow stand-ins).
    if var_counter > 4:
        for _ in range(var_counter // 3):
            a = f"v{rng.randrange(var_counter)}"
            b = f"v{rng.randrange(var_counter)}"
            if a != b:
                facts.assigns.append((a, b))
    facts.assigns = sorted(set(facts.assigns))
    return facts


def _poissonish(rng: random.Random, mean: float) -> int:
    """Cheap non-negative integer draw with the given mean."""
    return max(0, int(rng.gauss(mean, max(0.5, mean / 2))))


#: Benchmark presets sized (small to large) like the paper's Table 2
#: suite: javac with the standard library stripped (javac-s), compress,
#: javac, sablecc, and jedit.
PRESETS: Dict[str, Dict[str, int | float]] = {
    "javac-s": dict(n_classes=40, n_signatures=10, methods_per_class=2.5,
                    vars_per_method=2.5, assigns_per_method=2.5, seed=101),
    "compress": dict(n_classes=80, n_signatures=12, methods_per_class=3.0,
                     vars_per_method=3.0, assigns_per_method=3.0, seed=102),
    "javac": dict(n_classes=120, n_signatures=14, methods_per_class=3.0,
                  vars_per_method=3.5, assigns_per_method=3.0, seed=103),
    "sablecc": dict(n_classes=160, n_signatures=14, methods_per_class=3.5,
                    vars_per_method=3.5, assigns_per_method=3.0, seed=104),
    "jedit": dict(n_classes=220, n_signatures=16, methods_per_class=4.0,
                  vars_per_method=4.0, assigns_per_method=3.0, seed=105),
    # Scaled past the paper's Table 2 suite: the out-of-core kernel's
    # cap-enforcement workload (``repro.bench`` ``pointsto-xl``).  Its
    # uncapped points-to solve holds ~70 MB of kernel state resident,
    # so a 16 MB ``memory_cap_bytes`` genuinely forces spilling.
    "javac-xl": dict(n_classes=240, n_signatures=16, methods_per_class=4.0,
                     vars_per_method=4.0, assigns_per_method=3.5, seed=106),
}


def preset(name: str) -> ProgramFacts:
    """One of the named benchmark-like programs."""
    if name not in PRESETS:
        raise KeyError(f"unknown preset {name!r}; have {sorted(PRESETS)}")
    return synthesize(name, **PRESETS[name])
