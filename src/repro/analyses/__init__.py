"""The five interrelated whole-program analyses of section 5 (Figure 2).

``facts`` synthesises Soot-like program fact bases; ``universe`` builds
the shared relational universe; ``hierarchy``, ``vcall``, ``pointsto``,
``callgraph`` and ``sideeffects`` implement the analyses against the
public relational API (as jeddc-generated code would), each paired with
a naive set-based reference used as the test oracle; ``jedd_sources``
holds the same analyses as Jedd source text for the Table 1 benchmark;
``lowlevel`` is the hand-coded direct-BDD baseline for Table 2.
"""

from repro.analyses.callgraph import CallGraph, naive_call_graph
from repro.analyses.facts import PRESETS, ProgramFacts, preset, synthesize
from repro.analyses.hierarchy import Hierarchy, naive_subtypes
from repro.analyses.lowlevel import LowLevelPointsTo
from repro.analyses.pointsto import PointsTo, naive_points_to
from repro.analyses.sideeffects import SideEffects, naive_side_effects
from repro.analyses.universe import AnalysisUniverse
from repro.analyses.vcall import VirtualCallResolver, naive_resolve

__all__ = [
    "AnalysisUniverse",
    "CallGraph",
    "Hierarchy",
    "LowLevelPointsTo",
    "PRESETS",
    "PointsTo",
    "ProgramFacts",
    "SideEffects",
    "VirtualCallResolver",
    "naive_call_graph",
    "naive_points_to",
    "naive_resolve",
    "naive_side_effects",
    "naive_subtypes",
    "preset",
    "synthesize",
]
