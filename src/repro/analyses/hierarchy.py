"""Hierarchy analysis (Figure 2's Hierarchy module).

Computes the subtype relation -- the reflexive-transitive closure of the
immediate-superclass (``extend``) relation -- which the other analyses
consume.  The BDD version iterates a compose to a fixpoint; the naive
version walks ancestor chains and is used as the test oracle.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.analyses.facts import ProgramFacts
from repro.analyses.universe import AnalysisUniverse
from repro.relations import Relation

__all__ = ["Hierarchy", "naive_subtypes"]


class Hierarchy:
    """BDD-based hierarchy information over an analysis universe."""

    def __init__(self, au: AnalysisUniverse) -> None:
        self.au = au
        self.extend = au.extend()
        self.subtype = self._closure()

    def _closure(self) -> Relation:
        """Reflexive-transitive closure of ``extend``.

        ``subtype(sub, sup)`` holds when ``sub`` is ``sup`` or a
        (transitive) subclass of it.
        """
        au = self.au
        # Reflexive seed: every known class is its own subtype.
        classes = [(c, c) for c in au.facts.classes]
        closure = au.rel(["subtype", "supertype"], classes, ["T1", "T2"])
        closure = closure | self.extend
        while True:
            # one step up: subtype o extend
            step = closure.compose(
                self.extend.rename(
                    {"subtype": "supertype", "supertype": "tgttype"}
                ),
                ["supertype"],
                ["supertype"],
            ).rename({"tgttype": "supertype"})
            new = closure | step
            if new == closure:
                return closure
            closure = new


def naive_subtypes(facts: ProgramFacts) -> Set[Tuple[str, str]]:
    """Reference implementation by chain walking."""
    out = set()
    for cls in facts.classes:
        for anc in facts.ancestors(cls):
            out.add((cls, anc))
    return out
