"""Virtual call resolution (section 2.2 / Figure 4).

Given receiver types and method signatures at call sites, finds the
target method by searching up the class hierarchy -- for an entire
relation at once, exactly as the Jedd code in Figure 4 does.  The naive
version resolves one (type, signature) pair at a time and serves as the
oracle.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.analyses.facts import ProgramFacts
from repro.analyses.universe import AnalysisUniverse
from repro.relations import ExecutionPolicy, FixpointEngine, Relation

__all__ = ["VirtualCallResolver", "naive_resolve"]


class VirtualCallResolver:
    """BDD-based resolution, one loop iteration per hierarchy level."""

    def __init__(
        self,
        au: AnalysisUniverse,
        policy: ExecutionPolicy | str | None = None,
        *,
        engine: str | None = None,
        workers: int | None = None,
    ) -> None:
        self.au = au
        self.declares = au.declares_method()
        self.extend = au.extend()
        self.policy = ExecutionPolicy.from_deprecated(
            policy, "VirtualCallResolver", engine=engine, workers=workers
        )
        self.engine = self.policy.engine
        self.workers = self.policy.workers

    def resolve(self, receiver_types: Relation) -> Relation:
        """Figure 4's ``resolve``.

        ``receiver_types`` has schema (rectype, signature); the answer
        has schema (rectype, signature, tgttype, method) where tgttype
        is the class that actually implements the method.
        """
        if self.engine != "naive":
            return self._resolve_seminaive(receiver_types)
        return self._resolve_naive(receiver_types)

    def _resolve_seminaive(self, receiver_types: Relation) -> Relation:
        """Figure 4 as rules: ``walk`` carries the (rectype, signature)
        pairs up the hierarchy, stopping at the first class that
        declares the signature; ``answer`` collects the stops."""
        u = self.au.universe
        eng = FixpointEngine(u, self.policy)
        eng.fact("declares", self.declares)
        # (type, signature) pairs with *some* declaration -- the
        # stratified-negation guard for "keep walking".
        eng.fact("declared_at", self.declares.project_away("method"))
        eng.fact("extends", self.extend)
        eng.relation(
            "walk",
            receiver_types.copy("rectype", ["rectype", "tgttype"], ["T2"]),
        )
        eng.relation(
            "answer",
            Relation.empty(
                u,
                ["rectype", "signature", "tgttype", "method"],
                ["T1", "S1", "T2", "M1"],
            ),
        )
        eng.rule(
            "answer",
            {"rectype": "rectype", "signature": "signature",
             "tgttype": "tgttype", "method": "method"},
            [
                ("walk", {"rectype": "rectype", "signature": "signature",
                          "tgttype": "tgttype"}),
                ("declares", {"type": "tgttype", "signature": "signature",
                              "method": "method"}),
            ],
        )
        eng.rule(
            "walk",
            {"rectype": "rectype", "signature": "signature",
             "tgttype": "supertype"},
            [
                ("walk", {"rectype": "rectype", "signature": "signature",
                          "tgttype": "tgttype"}),
                ("!declared_at", {"type": "tgttype",
                                  "signature": "signature"}),
                ("extends", {"subtype": "tgttype",
                             "supertype": "supertype"}),
            ],
        )
        return eng.solve()["answer"]

    def _resolve_naive(self, receiver_types: Relation) -> Relation:
        answer = Relation.empty(
            self.au.universe,
            ["rectype", "signature", "tgttype", "method"],
            ["T1", "S1", "T2", "M1"],
        )
        # line 3: save a copy of the receiver type to walk upward.
        to_resolve = receiver_types.copy(
            "rectype", ["rectype", "tgttype"], ["T2"]
        )
        while True:
            # line 7: does the current class implement the signature?
            resolved = to_resolve.join(
                self.declares,
                ["tgttype", "signature"],
                ["type", "signature"],
            )
            # line 8: record the resolved calls.
            answer = answer | resolved
            # line 9: drop them from the work set.
            to_resolve = to_resolve - resolved.project_away("method")
            # line 10: move one level up the hierarchy.
            to_resolve = to_resolve.compose(
                self.extend, ["tgttype"], ["subtype"]
            ).rename({"supertype": "tgttype"})
            # line 11: loop until nothing is left to resolve.
            if to_resolve.is_empty():
                return answer


def naive_resolve(
    facts: ProgramFacts, receiver_types: Set[Tuple[str, str]]
) -> Set[Tuple[str, str, str, str]]:
    """Reference: per-pair chain walking via ProgramFacts.resolve."""
    out = set()
    table = facts.declares_map()
    for rectype, signature in receiver_types:
        for anc in facts.ancestors(rectype):
            method = table.get((anc, signature))
            if method is not None:
                out.add((rectype, signature, anc, method))
                break
    return out
