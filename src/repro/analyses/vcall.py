"""Virtual call resolution (section 2.2 / Figure 4).

Given receiver types and method signatures at call sites, finds the
target method by searching up the class hierarchy -- for an entire
relation at once, exactly as the Jedd code in Figure 4 does.  The naive
version resolves one (type, signature) pair at a time and serves as the
oracle.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.analyses.facts import ProgramFacts
from repro.analyses.universe import AnalysisUniverse
from repro.relations import Relation

__all__ = ["VirtualCallResolver", "naive_resolve"]


class VirtualCallResolver:
    """BDD-based resolution, one loop iteration per hierarchy level."""

    def __init__(self, au: AnalysisUniverse) -> None:
        self.au = au
        self.declares = au.declares_method()
        self.extend = au.extend()

    def resolve(self, receiver_types: Relation) -> Relation:
        """Figure 4's ``resolve``.

        ``receiver_types`` has schema (rectype, signature); the answer
        has schema (rectype, signature, tgttype, method) where tgttype
        is the class that actually implements the method.
        """
        answer = Relation.empty(
            self.au.universe,
            ["rectype", "signature", "tgttype", "method"],
            ["T1", "S1", "T2", "M1"],
        )
        # line 3: save a copy of the receiver type to walk upward.
        to_resolve = receiver_types.copy(
            "rectype", ["rectype", "tgttype"], ["T2"]
        )
        while True:
            # line 7: does the current class implement the signature?
            resolved = to_resolve.join(
                self.declares,
                ["tgttype", "signature"],
                ["type", "signature"],
            )
            # line 8: record the resolved calls.
            answer = answer | resolved
            # line 9: drop them from the work set.
            to_resolve = to_resolve - resolved.project_away("method")
            # line 10: move one level up the hierarchy.
            to_resolve = to_resolve.compose(
                self.extend, ["tgttype"], ["subtype"]
            ).rename({"supertype": "tgttype"})
            # line 11: loop until nothing is left to resolve.
            if to_resolve.is_empty():
                return answer


def naive_resolve(
    facts: ProgramFacts, receiver_types: Set[Tuple[str, str]]
) -> Set[Tuple[str, str, str, str]]:
    """Reference: per-pair chain walking via ProgramFacts.resolve."""
    out = set()
    table = facts.declares_map()
    for rectype, signature in receiver_types:
        for anc in facts.ancestors(rectype):
            method = table.get((anc, signature))
            if method is not None:
                out.add((rectype, signature, anc, method))
                break
    return out
