"""Hand-coded low-level BDD points-to analysis (the Table 2 baseline).

The paper compares Jedd-generated code against the hand-written C++
points-to solver of Berndl et al. [5], which calls BuDDy directly and
manages physical domains and replace operations by hand.  This module
plays that role: it uses :class:`repro.bdd.BDDManager` directly --
no relations, no schema checks, no automatic alignment, hand-picked
variable levels, and explicit reference counting -- implementing the
identical algorithm as ``repro.analyses.pointsto.PointsTo``.

It exists to measure the *overhead* of the Jedd abstraction (the paper
reports 0.5%-4%), so it deliberately mirrors what careful hand-written
code looks like against a raw BDD library.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.analyses.facts import ProgramFacts
from repro.bdd import FALSE, BDDManager

__all__ = ["LowLevelPointsTo"]


class _Dom:
    """A hand-managed physical domain: a block of interleaved levels."""

    def __init__(self, levels: List[int]) -> None:
        self.levels = levels  # index 0 = least significant bit
        self.bits = len(levels)


class LowLevelPointsTo:
    """Direct-BDD points-to solver with hand-assigned domains.

    Domain layout (interleaved within each family, as a tuned
    hand-coded solver would choose): V1/V2 for variables, H1/H2 for
    objects, F1 for fields.
    """

    def __init__(self, facts: ProgramFacts) -> None:
        self.facts = facts
        self._vars: Dict[str, int] = {}
        self._objs: Dict[str, int] = {}
        self._fields: Dict[str, int] = {}
        for v in facts.variables:
            self._vars.setdefault(v, len(self._vars))
        for _, site in facts.allocs:
            self._objs.setdefault(site, len(self._objs))
        for f in facts.fields:
            self._fields.setdefault(f, len(self._fields))
        v_bits = max(1, (max(len(self._vars), 2) - 1).bit_length())
        o_bits = max(1, (max(len(self._objs), 2) - 1).bit_length())
        f_bits = max(1, (max(len(self._fields), 2) - 1).bit_length())
        total = 2 * v_bits + 2 * o_bits + f_bits
        self.m = BDDManager(total)
        # Interleave V1/V2, then H1/H2, then F1 (most significant first).
        next_level = 0
        v1, v2 = [0] * v_bits, [0] * v_bits
        for i in range(v_bits):
            v1[v_bits - 1 - i] = next_level
            next_level += 1
            v2[v_bits - 1 - i] = next_level
            next_level += 1
        h1, h2 = [0] * o_bits, [0] * o_bits
        for i in range(o_bits):
            h1[o_bits - 1 - i] = next_level
            next_level += 1
            h2[o_bits - 1 - i] = next_level
            next_level += 1
        f1 = [0] * f_bits
        for i in range(f_bits):
            f1[f_bits - 1 - i] = next_level
            next_level += 1
        self.V1, self.V2 = _Dom(v1), _Dom(v2)
        self.H1, self.H2 = _Dom(h1), _Dom(h2)
        self.F1 = _Dom(f1)
        self.iterations = 0
        self.pt = FALSE
        self.hpt = FALSE

    # -- encoding ---------------------------------------------------------

    def _cube(self, pairs: Sequence[Tuple[_Dom, int]]) -> int:
        assignment: Dict[int, bool] = {}
        for dom, value in pairs:
            for j in range(dom.bits):
                assignment[dom.levels[j]] = bool(value >> j & 1)
        return self.m.cube(assignment)

    def _encode(self, rows, spec) -> int:
        node = FALSE
        for row in rows:
            node = self.m.apply_or(
                node,
                self._cube(
                    [(dom, table[key]) for (dom, table), key in zip(spec, row)]
                ),
            )
        return node

    def _perm(self, moves: Sequence[Tuple[_Dom, _Dom]]) -> Dict[int, int]:
        perm: Dict[int, int] = {}
        for src, dst in moves:
            for a, b in zip(src.levels, dst.levels):
                perm[a] = b
        return perm

    # -- the solver ---------------------------------------------------------

    def solve(self) -> int:
        """Run to fixpoint; returns the pt BDD (V1 x H1)."""
        m = self.m
        facts = self.facts
        # Input BDDs, hand-encoded into fixed physical domains.
        alloc = self._encode(
            facts.allocs, [(self.V1, self._vars), (self.H1, self._objs)]
        )
        # assign: dst in V1, src in V2
        assign = self._encode(
            facts.assigns, [(self.V1, self._vars), (self.V2, self._vars)]
        )
        # store: base in V1, field in F1, src in V2
        store = self._encode(
            facts.stores,
            [(self.V1, self._vars), (self.F1, self._fields),
             (self.V2, self._vars)],
        )
        # load: dst in V1, base in V2, field in F1
        load = self._encode(
            facts.loads,
            [(self.V1, self._vars), (self.V2, self._vars),
             (self.F1, self._fields)],
        )
        v1_to_v2 = self._perm([(self.V1, self.V2)])
        h1_to_h2 = self._perm([(self.H1, self.H2)])
        h2_to_h1 = self._perm([(self.H2, self.H1)])
        pt = m.ref(alloc)
        hpt = m.ref(FALSE)
        while True:
            self.iterations += 1
            # rule 2: pt |= exists v2. assign(v1,v2) & pt[v1->v2](v2,h1)
            pt_src = m.replace(pt, v1_to_v2)  # (V2, H1)
            flow = m.and_exist(assign, pt_src, self.V2.levels)
            new_pt = m.apply_or(pt, flow)
            # rule 3: hpt |= exists v1,v2. store & pt(base) & pt(src)
            s1 = m.and_exist(store, pt, self.V1.levels)  # (F1,V2,H1)
            pt_src_obj2 = m.replace(pt_src, h1_to_h2)  # (V2, H2)
            s2 = m.and_exist(s1, pt_src_obj2, self.V2.levels)  # (F1,H1,H2)
            new_hpt = m.apply_or(hpt, s2)
            # rule 4: pt |= exists v2,h1',f. load & pt(base) & hpt
            l1 = m.and_exist(load, pt_src, self.V2.levels)  # (V1,F1,H1)
            l2 = m.and_exist(
                l1, new_hpt, self.H1.levels + self.F1.levels
            )  # (V1, H2)
            l3 = m.replace(l2, h2_to_h1)  # (V1, H1)
            new_pt = m.apply_or(new_pt, l3)
            if new_pt == pt and new_hpt == hpt:
                self.pt = pt
                self.hpt = hpt
                return pt
            # Hand-managed reference counts, as a C solver would do.
            m.deref(pt)
            m.deref(hpt)
            pt = m.ref(new_pt)
            hpt = m.ref(new_hpt)
            m.maybe_gc()

    # -- extraction (for the tests' cross-check) ----------------------------

    def pt_tuples(self) -> Set[Tuple[str, str]]:
        """Decode the pt BDD back to (variable, object) pairs."""
        inv_vars = {i: v for v, i in self._vars.items()}
        inv_objs = {i: o for o, i in self._objs.items()}
        out: Set[Tuple[str, str]] = set()
        levels = self.V1.levels + self.H1.levels
        for assignment in self.m.all_sat(self.pt, levels):
            v = sum(
                1 << j
                for j in range(self.V1.bits)
                if assignment[self.V1.levels[j]]
            )
            o = sum(
                1 << j
                for j in range(self.H1.bits)
                if assignment[self.H1.levels[j]]
            )
            if v in inv_vars and o in inv_objs:
                out.add((inv_vars[v], inv_objs[o]))
        return out
