"""The five whole-program analyses as Jedd source text (section 5).

These are the programs fed to the jeddc pipeline for Table 1: for each
module the constraint-generation and SAT statistics are measured, and
for the combination of all five.  The sources mirror the algorithms of
``repro.analyses`` -- the points-to program is also executed (via the
interpreter and via generated code) in tests and in the Table 2
benchmark, so these are real, runnable analyses, not mock inputs.

Domain sizes are parameters: Table 1 only depends on the *structure*
(expressions, attributes, constraints), while execution needs sizes
matching the fact base.
"""

from __future__ import annotations

from typing import Dict

__all__ = [
    "declarations",
    "hierarchy_source",
    "vcall_source",
    "pointsto_source",
    "callgraph_source",
    "sideeffects_source",
    "combined_source",
    "ANALYSIS_SOURCES",
]


def declarations(
    type_bits: int = 6,
    sig_bits: int = 5,
    method_bits: int = 8,
    var_bits: int = 9,
    obj_bits: int = 7,
    field_bits: int = 4,
    site_bits: int = 8,
) -> str:
    """Shared domain/attribute/physical-domain declarations."""
    return f"""
domain Type {1 << type_bits};
domain Signature {1 << sig_bits};
domain Method {1 << method_bits};
domain Var {1 << var_bits};
domain Obj {1 << obj_bits};
domain Field {1 << field_bits};
domain Site {1 << site_bits};

attribute type : Type;
attribute subtype : Type;
attribute supertype : Type;
attribute rectype : Type;
attribute tgttype : Type;
attribute signature : Signature;
attribute method : Method;
attribute caller : Method;
attribute callee : Method;
attribute var : Var;
attribute srcvar : Var;
attribute dstvar : Var;
attribute basevar : Var;
attribute obj : Obj;
attribute baseobj : Obj;
attribute srcobj : Obj;
attribute field : Field;
attribute site : Site;

physdom T1 {type_bits};
physdom T2 {type_bits};
physdom T3 {type_bits};
physdom S1 {sig_bits};
physdom S2 {sig_bits};
physdom M1 {method_bits};
physdom M2 {method_bits};
physdom V1 {var_bits};
physdom V2 {var_bits};
physdom V3 {var_bits};
physdom H1 {obj_bits};
physdom H2 {obj_bits};
physdom H3 {obj_bits};
physdom F1 {field_bits};
physdom C1 {site_bits};
"""


# ----------------------------------------------------------------------
# Hierarchy: subtype closure of the extends relation.
# ----------------------------------------------------------------------

HIERARCHY_BODY = """
<subtype:T1, supertype:T2> extend;
<subtype:T1, supertype:T2> selfPairs;
<subtype:T1, supertype:T2> subtypeRel;

def computeHierarchy() {
  <subtype:T1, supertype:T2> old = 0B;
  subtypeRel = extend | selfPairs;
  while (subtypeRel != old) {
    old = subtypeRel;
    <subtype:T1, tgttype:T3> step =
        subtypeRel{supertype} <> (supertype=>tgttype) extend{subtype};
    subtypeRel |= (tgttype=>supertype) step;
  }
}

def isAncestorQuery(<subtype:T1, supertype:T2> query) {
  <subtype:T1, supertype:T2> hits = query & subtypeRel;
  if (hits == query) {
    print(hits);
  }
}

def descendantsOf(<supertype:T2> roots) {
  <subtype:T1> below =
      (supertype=>) (subtypeRel{supertype} >< roots{supertype});
  print(below);
}

def leafClasses() {
  <supertype:T2> withSubs = (subtype=>) extend;
  <subtype:T1> allClasses = (supertype=>) subtypeRel;
  <subtype:T1> leaves = allClasses - (supertype=>subtype) withSubs;
  print(leaves);
}
"""


# ----------------------------------------------------------------------
# Virtual call resolution: Figure 4, verbatim modulo host syntax.
# ----------------------------------------------------------------------

VCALL_BODY = """
<type:T1, signature:S1, method:M1> declaresMethod;
<rectype, signature, tgttype, method> answer = 0B;

def resolve(<rectype:T1, signature:S1> receiverTypes,
            <subtype:T2, supertype:T3> extendRel) {
  <rectype, signature, tgttype> toResolve =
      (rectype => rectype tgttype) receiverTypes;
  do {
    <rectype:T1, signature:S1, tgttype:T2, method:M1> resolved =
      toResolve{tgttype, signature} >< declaresMethod{type, signature};
    answer |= resolved;
    toResolve -= (method=>) resolved;
    toResolve = (supertype=>tgttype)
        (toResolve{tgttype} <> extendRel{subtype});
  } while (toResolve != 0B);
}

<rectype:T1, signature:S1> unresolved;

def findUnresolved(<rectype:T1, signature:S1> receiverTypes) {
  unresolved = receiverTypes - (tgttype=>) (method=>) answer;
}
"""


# ----------------------------------------------------------------------
# Points-to analysis (Berndl et al. [5]).
# ----------------------------------------------------------------------

POINTSTO_BODY = """
<var:V1, obj:H1> alloc;
<dstvar:V1, srcvar:V2> assignEdge;
<basevar:V1, field:F1, srcvar:V2> storeEdge;
<dstvar:V1, basevar:V2, field:F1> loadEdge;
<var:V1, obj:H1> pt;
<baseobj:H1, field:F1, srcobj:H2> hpt;

def solvePointsTo() {
  pt = alloc;
  hpt = 0B;
  <var:V1, obj:H1> oldpt = 0B;
  do {
    oldpt = pt;
    pt |= (dstvar=>var)
        (assignEdge{srcvar} <> (var=>srcvar) pt{srcvar});
    <field:F1, srcvar:V2, baseobj:H1> s1 =
        storeEdge{basevar} <> (var=>basevar, obj=>baseobj) pt{basevar};
    <field:F1, baseobj:H1, srcobj:H2> s2 =
        s1{srcvar} <> (var=>srcvar, obj=>srcobj) pt{srcvar};
    hpt |= s2;
    <dstvar:V1, field:F1, baseobj:H1> l1 =
        loadEdge{basevar} <> (var=>basevar, obj=>baseobj) pt{basevar};
    <dstvar:V1, srcobj:H2> l2 =
        l1{baseobj, field} <> hpt{baseobj, field};
    pt |= (dstvar=>var, srcobj=>obj) l2;
  } while (pt != oldpt);
}

def mayAlias() {
  <var:V1, srcvar:V2> aliasPairs =
      pt{obj} <> ((var=>srcvar) pt){obj};
  print(aliasPairs);
}
"""

# The same algorithm with the explicit do/while loop replaced by a
# ``fix`` block: the three rules run to a simultaneous fixed point with
# semi-naive evaluation (each round joins only the previous round's
# delta), and the intermediate relations s1/s2/l1/l2 disappear into
# inlined compose chains.
POINTSTO_FIX_BODY = """
<var:V1, obj:H1> alloc;
<dstvar:V1, srcvar:V2> assignEdge;
<basevar:V1, field:F1, srcvar:V2> storeEdge;
<dstvar:V1, basevar:V2, field:F1> loadEdge;
<var:V1, obj:H1> pt;
<baseobj:H1, field:F1, srcobj:H2> hpt;

def solvePointsTo() {
  pt = alloc;
  hpt = 0B;
  fix {
    pt |= (dstvar=>var)
        (assignEdge{srcvar} <> (var=>srcvar) pt{srcvar});
    hpt |= (storeEdge{basevar} <> (var=>basevar, obj=>baseobj) pt{basevar})
        {srcvar} <> (var=>srcvar, obj=>srcobj) pt{srcvar};
    pt |= (dstvar=>var, srcobj=>obj)
        ((loadEdge{basevar} <> (var=>basevar, obj=>baseobj) pt{basevar})
        {baseobj, field} <> hpt{baseobj, field});
  }
}
"""

# Declared-type filtering (the full Berndl et al. [5] algorithm): a
# variable may only point to objects whose runtime type is a subtype of
# the variable's declared type.  Imports subtypeRel from the hierarchy
# module, so this variant appears only in programs that include it.
POINTSTO_FILTER_BODY = """
<var:V1, supertype:T2> varType;
<obj:H1, type:T1> objType;
<var:V1, obj:H1> compat;

def computeCompat() {
  <obj:H1, supertype:T2> objSuper =
      ((type=>subtype) objType){subtype} <> subtypeRel{subtype};
  compat = objSuper{supertype} <> varType{supertype};
}

def solvePointsToFiltered() {
  computeCompat();
  pt = alloc & compat;
  hpt = 0B;
  <var:V1, obj:H1> oldpt = 0B;
  do {
    oldpt = pt;
    pt |= (dstvar=>var)
        (assignEdge{srcvar} <> (var=>srcvar) pt{srcvar}) & compat;
    <field:F1, srcvar:V2, baseobj:H1> fs1 =
        storeEdge{basevar} <> (var=>basevar, obj=>baseobj) pt{basevar};
    <field:F1, baseobj:H1, srcobj:H2> fs2 =
        fs1{srcvar} <> (var=>srcvar, obj=>srcobj) pt{srcvar};
    hpt |= fs2;
    <dstvar:V1, field:F1, baseobj:H1> fl1 =
        loadEdge{basevar} <> (var=>basevar, obj=>baseobj) pt{basevar};
    <dstvar:V1, srcobj:H2> fl2 =
        fl1{baseobj, field} <> hpt{baseobj, field};
    pt |= ((dstvar=>var, srcobj=>obj) fl2) & compat;
  } while (pt != oldpt);
}
"""


# ----------------------------------------------------------------------
# Call graph construction from points-to + hierarchy.
# ----------------------------------------------------------------------

CALLGRAPH_BODY = """
<site:C1, var:V1, signature:S1> virtualCalls;
<obj:H1, type:T1> allocType;
<site:C1, caller:M1> siteMethod;
<site:C1, callee:M1> siteTargets;
<caller:M1, callee:M2> callEdges;

def buildCallGraph() {
  <site:C1, signature:S1, obj:H1> recvObjs =
      virtualCalls{var} <> pt{var};
  <site:C1, signature:S1, rectype:T1> recvTypes =
      (type=>rectype) (recvObjs{obj} <> allocType{obj});
  <rectype:T1, signature:S1> receiverTypes = (site=>) recvTypes;
  answer = 0B;
  resolve(receiverTypes, extend);
  <site:C1, signature:S1, rectype:T1, method:M1> siteAnswers =
      recvTypes{rectype, signature} ><
      ((tgttype=>) answer){rectype, signature};
  siteTargets = (method=>callee) (rectype=>) (signature=>) siteAnswers;
  callEdges = (site=>) (siteTargets{site} >< siteMethod{site});
}

def callersOf(<callee:M2> targets) {
  <caller:M1> callers =
      (callee=>) (callEdges{callee} >< targets{callee});
  print(callers);
}

def reachableMethods(<method:M1> roots) {
  <method:M1> reached = roots;
  <method:M1> oldReached = 0B;
  while (reached != oldReached) {
    oldReached = reached;
    <callee:M2> next =
        ((caller=>method) callEdges){method} <> reached{method};
    reached |= (callee=>method) next;
  }
  print(reached);
}
"""


# ----------------------------------------------------------------------
# Side-effect analysis.
# ----------------------------------------------------------------------

SIDEEFFECTS_BODY = """
<method:M1, var:V1> methodVar;
<method:M1, baseobj:H1, field:F1> writeSet;
<method:M1, baseobj:H1, field:F1> readSet;

def solveSideEffects() {
  <method:M1, basevar:V1> mvBase = (var=>basevar) methodVar;
  <basevar:V1, field:F1> storeBF = (srcvar=>) storeEdge;
  <basevar:V2, field:F1> loadBF = (dstvar=>) loadEdge;
  <basevar:V1, baseobj:H1> ptBase = (var=>basevar, obj=>baseobj) pt;
  <basevar:V1, field:F1, method:M1> wOwn =
      storeBF{basevar} >< mvBase{basevar};
  writeSet = (basevar=>) (wOwn{basevar} >< ptBase{basevar});
  <basevar:V1, field:F1, method:M1> rOwn =
      ((basevar=>basevar) loadBF){basevar} >< mvBase{basevar};
  readSet = (basevar=>) (rOwn{basevar} >< ptBase{basevar});
  <method:M1, baseobj:H1, field:F1> oldW = 0B;
  while (writeSet != oldW) {
    oldW = writeSet;
    <caller:M1, baseobj:H1, field:F1> inheritedW =
        callEdges{callee} <> ((method=>callee) writeSet){callee};
    writeSet |= (caller=>method) inheritedW;
  }
  <method:M1, baseobj:H1, field:F1> oldR = 0B;
  while (readSet != oldR) {
    oldR = readSet;
    <caller:M1, baseobj:H1, field:F1> inheritedR =
        callEdges{callee} <> ((method=>callee) readSet){callee};
    readSet |= (caller=>method) inheritedR;
  }
}

<caller:M1, callee:M2> interfere;

def computeInterference() {
  <caller:M1, baseobj:H1, field:F1> w = (method=>caller) writeSet;
  <callee:M2, baseobj:H1, field:F1> r = (method=>callee) readSet;
  interfere = w{baseobj, field} <> r{baseobj, field};
}
"""


# Stub input declarations for standalone per-module measurement: each
# module is compiled on its own (as a separate .jedd file would be),
# with the relations it imports from other modules declared as globals.
_CALLGRAPH_INPUTS = """
<var:V1, obj:H1> pt;
"""

_POINTSTO_INPUTS = """
<subtype:T1, supertype:T2> subtypeRel;
"""

_SIDEEFFECTS_INPUTS = """
<var:V1, obj:H1> pt;
<basevar:V1, field:F1, srcvar:V2> storeEdge;
<dstvar:V1, basevar:V2, field:F1> loadEdge;
<caller:M1, callee:M2> callEdges;
"""


def hierarchy_source(**bits) -> str:
    """The hierarchy module as standalone Jedd source."""
    return declarations(**bits) + HIERARCHY_BODY


def vcall_source(**bits) -> str:
    """Virtual call resolution (Figure 4) as standalone Jedd source."""
    return declarations(**bits) + VCALL_BODY


def pointsto_source(**bits) -> str:
    # subtypeRel is imported from the hierarchy module (declared as an
    # input stub when measured standalone); the filtered variant is the
    # full algorithm of [5].
    return (
        declarations(**bits)
        + _POINTSTO_INPUTS
        + POINTSTO_BODY
        + POINTSTO_FILTER_BODY
    )


def pointsto_fix_source(**bits) -> str:
    """Points-to with the iteration written as a ``fix`` block."""
    return declarations(**bits) + POINTSTO_FIX_BODY


def callgraph_source(**bits) -> str:
    # The call graph module calls into virtual call resolution (resolve)
    # and imports pt from the points-to module and extend from the
    # hierarchy module.
    return (
        declarations(**bits)
        + HIERARCHY_BODY
        + VCALL_BODY
        + _CALLGRAPH_INPUTS
        + CALLGRAPH_BODY
    )


def sideeffects_source(**bits) -> str:
    """The side-effect module with its imported-input stubs."""
    return declarations(**bits) + _SIDEEFFECTS_INPUTS + SIDEEFFECTS_BODY


def combined_source(**bits) -> str:
    """All five modules in one program (the Table 1 "All 5 combined")."""
    return (
        declarations(**bits)
        + HIERARCHY_BODY
        + VCALL_BODY
        + POINTSTO_BODY
        + POINTSTO_FILTER_BODY
        + CALLGRAPH_BODY
        + SIDEEFFECTS_BODY
    )


#: module name -> source builder, in the paper's Table 1 order
ANALYSIS_SOURCES = {
    "Virtual Call Resolution": vcall_source,
    "Hierarchy": hierarchy_source,
    "Points-to Analysis": pointsto_source,
    "Side-effect Analysis": sideeffects_source,
    "Call Graph": callgraph_source,
    "All 5 combined": combined_source,
}
