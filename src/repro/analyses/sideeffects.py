"""Side-effect analysis (Figure 2's Side-effect Analysis module).

For every method, the (object, field) pairs it may read and write --
directly, and transitively through the methods it calls.  This is the
analysis the paper quotes in section 5: 803 non-comment lines of plain
Java versus 124 lines of Jedd, thanks to the BDD representation of the
"large, highly redundant sets of side effects".
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.analyses.callgraph import naive_call_graph
from repro.analyses.facts import ProgramFacts
from repro.analyses.pointsto import naive_points_to
from repro.analyses.universe import AnalysisUniverse
from repro.relations import ExecutionPolicy, FixpointEngine, Relation

__all__ = ["SideEffects", "naive_side_effects"]


class SideEffects:
    """BDD-based read/write effect sets."""

    def __init__(
        self,
        au: AnalysisUniverse,
        pt: Relation,
        call_edges: Relation,
        policy: ExecutionPolicy | str | None = None,
        *,
        engine: str | None = None,
        workers: int | None = None,
    ) -> None:
        self.au = au
        self.pt = pt
        self.call_edges = call_edges  # (caller, callee)
        self.policy = ExecutionPolicy.from_deprecated(
            policy, "SideEffects", engine=engine, workers=workers
        )
        self.engine = self.policy.engine
        self.workers = self.policy.workers
        self.writes: Relation | None = None
        self.reads: Relation | None = None

    def _direct(self) -> Tuple[Relation, Relation]:
        """Direct effects: (method, baseobj, field) per store/load."""
        au = self.au
        with au.universe.scope() as sc:
            mv_base = au.method_var().rename({"var": "basevar"})
            pt_base = self.pt.rename({"var": "basevar", "obj": "baseobj"})
            store_bf = au.store().project_away("srcvar")  # (basevar, field)
            writes = store_bf.join(mv_base, ["basevar"], ["basevar"]).compose(
                pt_base, ["basevar"], ["basevar"]
            )  # (field, method, baseobj)
            load_bf = au.load().project_away("dstvar")  # (basevar, field)
            reads = load_bf.join(mv_base, ["basevar"], ["basevar"]).compose(
                pt_base, ["basevar"], ["basevar"]
            )
            reads = sc.keep(reads.project_onto("method", "baseobj", "field"))
            writes = sc.keep(writes.project_onto("method", "baseobj", "field"))
        return reads, writes

    def solve(self) -> Tuple[Relation, Relation]:
        """Returns (reads, writes), schema (method, baseobj, field).

        Effects propagate from callees to callers over the call graph
        until a fixpoint.
        """
        reads, writes = self._direct()
        if self.engine != "naive":
            eng = FixpointEngine(self.au.universe, self.policy)
            eng.fact("calls", self.call_edges)
            eng.relation("reads", reads)
            eng.relation("writes", writes)
            for name in ("reads", "writes"):
                # caller inherits callee effects
                eng.rule(
                    name,
                    {"method": "caller", "baseobj": "baseobj",
                     "field": "field"},
                    [
                        ("calls", {"caller": "caller", "callee": "callee"}),
                        (name, {"method": "callee", "baseobj": "baseobj",
                                "field": "field"}),
                    ],
                )
            solution = eng.solve()
            self.reads = solution["reads"]
            self.writes = solution["writes"]
            return self.reads, self.writes
        edges = self.call_edges  # (caller, callee)
        while True:
            # caller inherits callee effects
            inherited_w = edges.compose(
                writes.rename({"method": "callee"}), ["callee"], ["callee"]
            ).rename({"caller": "method"})
            inherited_r = edges.compose(
                reads.rename({"method": "callee"}), ["callee"], ["callee"]
            ).rename({"caller": "method"})
            new_writes = writes | inherited_w
            new_reads = reads | inherited_r
            if new_writes == writes and new_reads == reads:
                self.reads, self.writes = reads, writes
                return reads, writes
            reads, writes = new_reads, new_writes


def naive_side_effects(
    facts: ProgramFacts,
) -> Tuple[Set[Tuple[str, str, str]], Set[Tuple[str, str, str]]]:
    """Reference implementation; returns (reads, writes) triples
    (method, baseobj, field)."""
    pt, _ = naive_points_to(facts)
    pt_map: Dict[str, Set[str]] = {}
    for var, obj in pt:
        pt_map.setdefault(var, set()).add(obj)
    var_method: Dict[str, str] = {}
    for method, var in facts.method_vars:
        var_method[var] = method
    reads: Set[Tuple[str, str, str]] = set()
    writes: Set[Tuple[str, str, str]] = set()
    for base, f, _src in facts.stores:
        m = var_method.get(base)
        if m is None:
            continue
        for bo in pt_map.get(base, ()):
            writes.add((m, bo, f))
    for _dst, base, f in facts.loads:
        m = var_method.get(base)
        if m is None:
            continue
        for bo in pt_map.get(base, ()):
            reads.add((m, bo, f))
    # transitive propagation over the call graph
    edges = naive_call_graph(facts)
    changed = True
    while changed:
        changed = False
        for caller, callee in edges:
            for m, bo, f in list(writes):
                if m == callee and (caller, bo, f) not in writes:
                    writes.add((caller, bo, f))
                    changed = True
            for m, bo, f in list(reads):
                if m == callee and (caller, bo, f) not in reads:
                    reads.add((caller, bo, f))
                    changed = True
    return reads, writes
