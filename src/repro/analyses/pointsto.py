"""Subset-based points-to analysis (Berndl et al. [5], as used in 5).

Computes, for every variable, the set of allocation sites it may point
to, with field-sensitive heap propagation:

- ``pt(var, obj)``      -- variable may point to object,
- ``hpt(baseobj, field, srcobj)`` -- object's field may point to object.

Rules iterated to a simultaneous fixpoint:

1. allocation:   ``v = new T()``          => pt(v, o)
2. assignment:   ``d = s``                => pt(d, *) >= pt(s, *)
3. field store:  ``b.f = s``              => hpt(o_b, f, o_s)
4. field load:   ``d = b.f``              => pt(d, *) >= hpt(pt(b), f, *)

By default the rules run on the semi-naive
:class:`~repro.relations.fixpoint.FixpointEngine` (each round joins
only the previous round's delta); how they run is one
:class:`~repro.relations.ExecutionPolicy` value —
``policy="naive"`` selects the original whole-relation loop, kept for
differential testing, and ``ExecutionPolicy(engine="parallel",
workers=4)`` fans rule bodies out across worker processes.  The
naive version runs the same chaotic iteration on Python sets.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.analyses.facts import ProgramFacts
from repro.analyses.universe import AnalysisUniverse
from repro.relations import ExecutionPolicy, FixpointEngine, Relation

__all__ = ["PointsTo", "naive_points_to"]


class PointsTo:
    """BDD-based points-to solver over an analysis universe.

    With ``type_filter=True`` the solver applies the declared-type
    filtering of Berndl et al. [5]: a variable may only point to objects
    whose runtime type is a subtype of the variable's declared type.
    This both sharpens the analysis and (as the original paper found)
    keeps the intermediate BDDs smaller.
    """

    def __init__(
        self,
        au: AnalysisUniverse,
        type_filter: bool = False,
        policy: ExecutionPolicy | str | None = None,
        *,
        engine: str | None = None,
        workers: int | None = None,
    ) -> None:
        self.au = au
        self.alloc = au.alloc()
        self.assign = au.assign()
        self.store = au.store()
        self.load = au.load()
        self.type_filter = type_filter
        self.policy = ExecutionPolicy.from_deprecated(
            policy, "PointsTo", engine=engine, workers=workers
        )
        self.engine = self.policy.engine
        self.workers = self.policy.workers
        self.fixpoint: FixpointEngine | None = None
        self.compat: Relation | None = None
        self.pt: Relation | None = None
        self.hpt: Relation | None = None
        #: number of fixpoint iterations, for the profiler story
        self.iterations = 0

    def _compatibility(self) -> Relation:
        """(var, obj) pairs allowed by declared types."""
        from repro.analyses.hierarchy import Hierarchy

        au = self.au
        with au.universe.scope() as sc:
            subtype = Hierarchy(au).subtype  # (subtype, supertype)
            obj_sub = au.alloc_type().rename({"type": "subtype"})
            var_super = au.rel(
                ["var", "supertype"], au.facts.var_types, ["V1", "T2"]
            )
            obj_super = obj_sub.compose(
                subtype, ["subtype"], ["subtype"]
            )  # (obj, supertype)
            return sc.keep(obj_super.compose(
                var_super, ["supertype"], ["supertype"]
            ))  # (obj, var)

    def solve(self) -> Relation:
        """Run to fixpoint; returns ``pt`` (schema var, obj)."""
        if self.type_filter:
            self.compat = self._compatibility()
        if self.engine != "naive":
            return self._solve_seminaive()
        return self._solve_naive()

    def _solve_seminaive(self) -> Relation:
        au = self.au
        eng = FixpointEngine(au.universe, self.policy)
        self.fixpoint = eng
        eng.fact("assign", self.assign)
        eng.fact("store", self.store)
        eng.fact("load", self.load)
        eng.relation("pt", self.alloc)
        eng.relation(
            "hpt",
            Relation.empty(
                au.universe,
                ["baseobj", "field", "srcobj"],
                ["H1", "F1", "H2"],
            ),
        )
        if self.compat is not None:
            eng.filter("pt", self.compat)
        # rule 2: assignments (dst inherits src's points-to set)
        eng.rule("pt", ("dstvar", "obj"), [
            ("assign", ("dstvar", "srcvar")),
            ("pt", {"var": "srcvar", "obj": "obj"}),
        ])
        # rule 3: stores populate the heap
        eng.rule("hpt", ("baseobj", "field", "srcobj"), [
            ("store", ("basevar", "field", "srcvar")),
            ("pt", {"var": "basevar", "obj": "baseobj"}),
            ("pt", {"var": "srcvar", "obj": "srcobj"}),
        ])
        # rule 4: loads read the heap
        eng.rule("pt", ("dstvar", "srcobj"), [
            ("load", ("dstvar", "basevar", "field")),
            ("pt", {"var": "basevar", "obj": "baseobj"}),
            ("hpt", ("baseobj", "field", "srcobj")),
        ])
        solution = eng.solve()
        self.pt = solution["pt"]
        self.hpt = solution["hpt"]
        self.iterations = eng.iterations
        return self.pt

    def _solve_naive(self) -> Relation:
        au = self.au
        pt = self.alloc
        if self.compat is not None:
            pt = pt & self.compat
        hpt = Relation.empty(
            au.universe, ["baseobj", "field", "srcobj"], ["H1", "F1", "H2"]
        )
        while True:
            self.iterations += 1
            # rule 2: assignments (dst inherits src's points-to set)
            flow = self.assign.compose(
                pt.rename({"var": "srcvar"}), ["srcvar"], ["srcvar"]
            ).rename({"dstvar": "var"})
            new_pt = pt | flow
            # rule 3: stores populate the heap
            pt_base = pt.rename({"var": "basevar", "obj": "baseobj"})
            pt_src = pt.rename({"var": "srcvar", "obj": "srcobj"})
            s1 = self.store.compose(pt_base, ["basevar"], ["basevar"])
            s2 = s1.compose(pt_src, ["srcvar"], ["srcvar"])
            new_hpt = hpt | s2
            # rule 4: loads read the heap
            l1 = self.load.compose(pt_base, ["basevar"], ["basevar"])
            l2 = l1.compose(
                new_hpt, ["baseobj", "field"], ["baseobj", "field"]
            )
            new_pt = new_pt | l2.rename({"dstvar": "var", "srcobj": "obj"})
            if self.type_filter:
                new_pt = new_pt & self.compat
            if new_pt == pt and new_hpt == hpt:
                self.pt = pt
                self.hpt = hpt
                return pt
            pt, hpt = new_pt, new_hpt


def naive_points_to(
    facts: ProgramFacts,
    type_filter: bool = False,
) -> Tuple[Set[Tuple[str, str]], Set[Tuple[str, str, str]]]:
    """Reference chaotic iteration on Python sets."""
    allowed = None
    if type_filter:
        declared = dict(facts.var_types)
        obj_type = dict(facts.alloc_types)
        ancestors = {c: set(facts.ancestors(c)) for c in facts.classes}

        def ok(var: str, obj: str) -> bool:
            return declared.get(var) in ancestors[obj_type[obj]]

        allowed = ok
    pt: Set[Tuple[str, str]] = {
        (v, o) for v, o in facts.allocs if allowed is None or allowed(v, o)
    }
    hpt: Set[Tuple[str, str, str]] = set()
    pt_map: Dict[str, Set[str]] = {}
    changed = True
    while changed:
        changed = False
        pt_map.clear()
        for var, obj in pt:
            pt_map.setdefault(var, set()).add(obj)
        for dst, src in facts.assigns:
            for obj in pt_map.get(src, ()):
                if (dst, obj) not in pt and (
                    allowed is None or allowed(dst, obj)
                ):
                    pt.add((dst, obj))
                    changed = True
        for base, f, src in facts.stores:
            for bo in pt_map.get(base, ()):
                for so in pt_map.get(src, ()):
                    if (bo, f, so) not in hpt:
                        hpt.add((bo, f, so))
                        changed = True
        for dst, base, f in facts.loads:
            for bo in pt_map.get(base, ()):
                for (bo2, f2, so) in list(hpt):
                    if (
                        bo2 == bo
                        and f2 == f
                        and (dst, so) not in pt
                        and (allowed is None or allowed(dst, so))
                    ):
                        pt.add((dst, so))
                        changed = True
    return pt, hpt
