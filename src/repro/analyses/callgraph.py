"""Call graph construction (Figure 2's Call Graph module).

Combines points-to results with virtual call resolution: the possible
runtime types of each call site's receiver determine the possible target
methods, yielding ``call_edge(site, callee)`` and the method-level graph
``calls(caller, callee)``.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.analyses.facts import ProgramFacts
from repro.analyses.pointsto import naive_points_to
from repro.analyses.universe import AnalysisUniverse
from repro.analyses.vcall import VirtualCallResolver, naive_resolve
from repro.relations import ExecutionPolicy, FixpointEngine, Relation

__all__ = ["CallGraph", "naive_call_graph"]


class CallGraph:
    """BDD-based call graph over points-to results."""

    def __init__(
        self,
        au: AnalysisUniverse,
        pt: Relation,
        policy: ExecutionPolicy | str | None = None,
        *,
        engine: str | None = None,
        workers: int | None = None,
    ) -> None:
        self.au = au
        self.pt = pt
        self.policy = ExecutionPolicy.from_deprecated(
            policy, "CallGraph", engine=engine, workers=workers
        )
        self.engine = self.policy.engine
        self.workers = self.policy.workers
        self.resolver = VirtualCallResolver(au, self.policy)
        self.site_targets: Relation | None = None
        self.edges: Relation | None = None

    def build(self) -> Relation:
        """Returns ``calls`` with schema (caller, callee)."""
        au = self.au
        with au.universe.scope() as sc:
            vc = au.virtual_calls()  # (site, var, signature)
            alloc_type = au.alloc_type()  # (obj, type)
            # The receiver's possible runtime types at each site.
            recv_objs = vc.compose(self.pt, ["var"], ["var"])  # (site, sig, obj)
            recv_types = recv_objs.compose(
                alloc_type, ["obj"], ["obj"]
            ).rename({"type": "rectype"})  # (site, signature, rectype)
            # Resolve (rectype, signature) pairs through the hierarchy.
            receiver_types = recv_types.project_away("site")
            answer = self.resolver.resolve(receiver_types)
            # (rectype, signature, tgttype, method): attach back to sites.
            targets = recv_types.join(
                answer.project_away("tgttype"),
                ["rectype", "signature"],
                ["rectype", "signature"],
            )  # (site, signature, rectype, method)
            self.site_targets = sc.keep(
                targets.project_onto("site", "method").rename(
                    {"method": "callee"}
                )
            )
            # Lift to method level through the enclosing-method relation.
            site_method = au.site_method()  # (site, caller)
            self.edges = sc.keep(
                self.site_targets.join(
                    site_method, ["site"], ["site"]
                ).project_away("site")
            )  # (callee, caller) order normalised below
        return self.edges

    def reachable_from(self, roots: Relation) -> Relation:
        """Methods transitively reachable from ``roots`` (schema: method)."""
        assert self.edges is not None, "build() first"
        if self.engine != "naive":
            eng = FixpointEngine(self.au.universe, self.policy)
            eng.fact("calls", self.edges)
            eng.relation("reached", roots)
            eng.rule("reached", ("callee",), [
                ("reached", {"method": "caller"}),
                ("calls", {"caller": "caller", "callee": "callee"}),
            ])
            return eng.solve()["reached"]
        edges = self.edges.rename({"caller": "method"})  # (method, callee)
        reached = roots
        while True:
            step = reached.compose(edges, ["method"], ["method"]).rename(
                {"callee": "method"}
            )
            new = reached | step
            if new == reached:
                return reached
            reached = new


def naive_call_graph(facts: ProgramFacts) -> Set[Tuple[str, str]]:
    """Reference: (caller, callee) pairs via naive points-to + resolve."""
    pt, _ = naive_points_to(facts)
    pt_map = {}
    for var, obj in pt:
        pt_map.setdefault(var, set()).add(obj)
    obj_type = dict(facts.alloc_types)
    site_caller = dict(facts.site_methods)
    edges = set()
    for site, recv, sig in facts.virtual_calls:
        rectypes = {obj_type[o] for o in pt_map.get(recv, ()) if o in obj_type}
        resolved = naive_resolve(
            facts, {(t, sig) for t in rectypes}
        )
        for _, _, _, method in resolved:
            edges.add((site_caller[site], method))
    return edges
