"""A CDCL SAT solver with unsat-core extraction.

The paper delegates the (NP-complete) physical domain assignment problem
to the zchaff solver and uses zchaff's *unsatisfiable core extraction*
[30] to produce meaningful error messages (section 3.3.3).  This module
is the reproduction's solver: conflict-driven clause learning with
two-watched-literal propagation, first-UIP learning, VSIDS-style
activities, phase saving, and Luby restarts.

Core extraction works by tracking, for every learned clause, the set of
*original* clause indices used in its derivation (the leaves of the
resolution proof).  When a conflict is derived at decision level 0, the
union of the conflict's origins with the origin closures of its
falsifying level-0 assignments is an unsatisfiable subset of the input
-- the core reported to the caller.  Like zchaff's, the core is small in
practice but not guaranteed minimal.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro import telemetry as _telemetry
from repro.sat.cnf import CNF

__all__ = ["SATResult", "SolveStats", "Solver", "solve"]


@dataclass
class SATResult:
    """Outcome of a SAT query.

    Attributes
    ----------
    satisfiable:
        Whether a model was found.
    model:
        On SAT, ``model[var]`` for every variable ``1..num_vars``.
    core:
        On UNSAT, indices (into the input CNF's clause list) of an
        unsatisfiable subset of the clauses.
    conflicts, decisions, propagations:
        Search statistics, reported in the Table 1 benchmark.
    """

    satisfiable: bool
    model: Optional[Dict[int, bool]] = None
    core: Optional[List[int]] = None
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0


@dataclass(frozen=True)
class SolveStats:
    """Cumulative search statistics of a :class:`Solver` instance.

    Unlike the per-result fields on :class:`SATResult`, these cover the
    solver's whole lifetime (restarts, learned-clause churn included) and
    are what the telemetry registry surfaces as ``sat.*`` counters.
    """

    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0
    learned: int = 0
    deleted: int = 0
    reductions: int = 0


def _luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence.

    1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...
    """
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x %= size
    return 1 << seq


class Solver:
    """One-shot CDCL solver over a :class:`~repro.sat.cnf.CNF` formula."""

    def __init__(self, cnf: CNF) -> None:
        self.cnf = cnf
        self.nv = cnf.num_vars
        # Clause database: original (non-tautological) clauses first,
        # learned clauses appended.  ``origins[cid]`` is the set of
        # original clause indices at the leaves of cid's derivation.
        self.clauses: List[List[int]] = []
        self.origins: List[FrozenSet[int]] = []
        self.watches: Dict[int, List[int]] = {}
        # Assignment state.
        self.value: List[Optional[bool]] = [None] * (self.nv + 1)
        self.reason: List[Optional[int]] = [None] * (self.nv + 1)
        self.level: List[int] = [0] * (self.nv + 1)
        self.zero_origins: List[FrozenSet[int]] = [frozenset()] * (self.nv + 1)
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.prop_head = 0
        # VSIDS.
        self.activity: List[float] = [0.0] * (self.nv + 1)
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.order: List[Tuple[float, int]] = []
        self.saved_phase: List[bool] = [False] * (self.nv + 1)
        # Learned-clause database management.
        self.learned_cids: List[int] = []
        self.clause_activity: Dict[int, float] = {}
        self.cla_inc = 1.0
        self.cla_decay = 0.999
        self.max_learned = 4000
        # Stats.
        self.n_conflicts = 0
        self.n_decisions = 0
        self.n_propagations = 0
        self.n_reductions = 0
        self.n_restarts = 0
        self.n_learned = 0
        self.n_deleted = 0
        # Input bookkeeping.
        self._empty_clause_idx: Optional[int] = None
        self._unit_inputs: List[Tuple[int, int]] = []  # (literal, orig idx)
        self._load()

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def _load(self) -> None:
        for idx, clause in enumerate(self.cnf.clauses):
            lits = list(clause)
            if not lits:
                self._empty_clause_idx = idx
                continue
            if any(-lit in clause for lit in clause):
                continue  # tautology: always satisfied, never in a core
            if len(lits) == 1:
                self._unit_inputs.append((lits[0], idx))
                continue
            cid = len(self.clauses)
            self.clauses.append(lits)
            self.origins.append(frozenset((idx,)))
            for lit in lits[:2]:
                self.watches.setdefault(-lit, []).append(cid)
        for v in range(1, self.nv + 1):
            heapq.heappush(self.order, (0.0, v))

    # ------------------------------------------------------------------
    # Assignment primitives
    # ------------------------------------------------------------------

    def _decision_level(self) -> int:
        return len(self.trail_lim)

    def _assign(
        self, lit: int, reason_cid: Optional[int], unit_origin: Optional[int]
    ) -> None:
        var = abs(lit)
        self.value[var] = lit > 0
        self.reason[var] = reason_cid
        self.level[var] = self._decision_level()
        self.saved_phase[var] = lit > 0
        if self.level[var] == 0:
            acc: Set[int] = set()
            if unit_origin is not None:
                acc.add(unit_origin)
            if reason_cid is not None:
                acc |= self.origins[reason_cid]
                for other in self.clauses[reason_cid]:
                    if other != lit:
                        acc |= self.zero_origins[abs(other)]
            self.zero_origins[var] = frozenset(acc)
        self.trail.append(lit)

    def _lit_value(self, lit: int) -> Optional[bool]:
        v = self.value[abs(lit)]
        if v is None:
            return None
        return v if lit > 0 else not v

    def _backtrack(self, target_level: int) -> None:
        while self.trail_lim and len(self.trail_lim) > target_level:
            boundary = self.trail_lim.pop()
            while len(self.trail) > boundary:
                lit = self.trail.pop()
                var = abs(lit)
                self.value[var] = None
                self.reason[var] = None
                heapq.heappush(self.order, (-self.activity[var], var))
        self.prop_head = len(self.trail)

    # ------------------------------------------------------------------
    # Propagation (two watched literals)
    # ------------------------------------------------------------------

    def _propagate(self) -> Optional[int]:
        """Propagate pending assignments; returns a conflicting cid or None."""
        while self.prop_head < len(self.trail):
            lit = self.trail[self.prop_head]
            self.prop_head += 1
            self.n_propagations += 1
            watching = self.watches.get(lit)
            if not watching:
                continue
            survivors: List[int] = []
            i = 0
            conflict = None
            while i < len(watching):
                cid = watching[i]
                i += 1
                clause = self.clauses[cid]
                if clause is None:  # deleted by a database reduction
                    continue
                # Ensure the falsified literal is in position 1.
                if clause[0] == -lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._lit_value(first) is True:
                    survivors.append(cid)
                    continue
                # Find a new literal to watch.
                moved = False
                for k in range(2, len(clause)):
                    if self._lit_value(clause[k]) is not False:
                        clause[1], clause[k] = clause[k], clause[1]
                        self.watches.setdefault(-clause[1], []).append(cid)
                        moved = True
                        break
                if moved:
                    continue
                survivors.append(cid)
                if self._lit_value(first) is False:
                    # Conflict: keep remaining watchers, stop.
                    survivors.extend(watching[i:])
                    conflict = cid
                    break
                self._assign(first, cid, None)
            self.watches[lit] = survivors
            if conflict is not None:
                return conflict
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------

    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for v in range(1, self.nv + 1):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100

    def _analyze(self, conflict_cid: int) -> Tuple[List[int], int, FrozenSet[int]]:
        """Derive a 1UIP clause; returns (learnt, backjump_level, origins)."""
        learnt: List[int] = []
        seen = [False] * (self.nv + 1)
        origins_acc: Set[int] = set(self.origins[conflict_cid])
        self._bump_clause(conflict_cid)
        counter = 0
        lits = list(self.clauses[conflict_cid])
        trail_idx = len(self.trail) - 1
        p: Optional[int] = None
        current = self._decision_level()
        while True:
            for q in lits:
                if p is not None and q == p:
                    continue
                var = abs(q)
                if self.level[var] == 0:
                    origins_acc |= self.zero_origins[var]
                    continue
                if not seen[var]:
                    seen[var] = True
                    self._bump(var)
                    if self.level[var] == current:
                        counter += 1
                    else:
                        learnt.append(q)
            # Walk the trail back to the next marked literal.
            while not seen[abs(self.trail[trail_idx])]:
                trail_idx -= 1
            p_lit = self.trail[trail_idx]
            p_var = abs(p_lit)
            trail_idx -= 1
            seen[p_var] = False
            counter -= 1
            if counter == 0:
                learnt.append(-p_lit)
                break
            reason_cid = self.reason[p_var]
            assert reason_cid is not None, "UIP literal must be implied"
            self._bump_clause(reason_cid)
            origins_acc |= self.origins[reason_cid]
            lits = list(self.clauses[reason_cid])
            p = p_lit
        # Asserting literal last; compute backjump level.
        if len(learnt) == 1:
            backjump = 0
        else:
            levels = sorted(
                (self.level[abs(l)] for l in learnt[:-1]), reverse=True
            )
            backjump = levels[0]
        return learnt, backjump, frozenset(origins_acc)

    def _conflict_core_at_zero(self, conflict_cid: int) -> List[int]:
        acc: Set[int] = set(self.origins[conflict_cid])
        for lit in self.clauses[conflict_cid]:
            acc |= self.zero_origins[abs(lit)]
        return sorted(acc)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def stats(self) -> SolveStats:
        """Snapshot of the cumulative search statistics."""
        return SolveStats(
            conflicts=self.n_conflicts,
            decisions=self.n_decisions,
            propagations=self.n_propagations,
            restarts=self.n_restarts,
            learned=self.n_learned,
            deleted=self.n_deleted,
            reductions=self.n_reductions,
        )

    def solve(self) -> SATResult:
        """Run the CDCL search to completion."""
        tel = _telemetry.active()
        if not tel.enabled:
            return self._solve()
        before = self.stats()
        with tel.span("sat.solve", cat="sat", vars=self.nv, clauses=len(self.clauses)):
            result = self._solve()
        tel.record_sat(self.stats(), before)
        return result

    def _solve(self) -> SATResult:
        if self._empty_clause_idx is not None:
            return SATResult(False, core=[self._empty_clause_idx])
        # Level-0 unit clauses.
        for lit, idx in self._unit_inputs:
            val = self._lit_value(lit)
            if val is True:
                continue
            if val is False:
                var = abs(lit)
                core = sorted({idx} | self.zero_origins[var])
                return SATResult(False, core=core)
            self._assign(lit, None, idx)
        conflict = self._propagate()
        if conflict is not None:
            return SATResult(
                False,
                core=self._conflict_core_at_zero(conflict),
                conflicts=self.n_conflicts,
                decisions=self.n_decisions,
                propagations=self.n_propagations,
            )
        restart_count = 0
        conflicts_until_restart = 64 * _luby(1)
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.n_conflicts += 1
                if self._decision_level() == 0:
                    return SATResult(
                        False,
                        core=self._conflict_core_at_zero(conflict),
                        conflicts=self.n_conflicts,
                        decisions=self.n_decisions,
                        propagations=self.n_propagations,
                    )
                learnt, backjump, origins = self._analyze(conflict)
                self._backtrack(backjump)
                self._learn(learnt, origins)
                self.var_inc /= self.var_decay
                self.cla_inc /= self.cla_decay
                conflicts_until_restart -= 1
                continue
            if conflicts_until_restart <= 0 and self._decision_level() > 0:
                restart_count += 1
                self.n_restarts += 1
                conflicts_until_restart = 64 * _luby(restart_count + 1)
                self._backtrack(0)
                continue
            var = self._pick_branch_var()
            if var is None:
                model = {
                    v: bool(self.value[v]) for v in range(1, self.nv + 1)
                }
                return SATResult(
                    True,
                    model=model,
                    conflicts=self.n_conflicts,
                    decisions=self.n_decisions,
                    propagations=self.n_propagations,
                )
            self.n_decisions += 1
            self.trail_lim.append(len(self.trail))
            lit = var if self.saved_phase[var] else -var
            self._assign(lit, None, None)

    def _learn(self, learnt: List[int], origins: FrozenSet[int]) -> None:
        self.n_learned += 1
        asserting = learnt[-1]
        if len(learnt) == 1:
            # Unit learned clause: assign at level 0; its origin set is the
            # derivation's origin set.
            var = abs(asserting)
            self.zero_origins[var] = origins
            self.value[var] = asserting > 0
            self.reason[var] = None
            self.level[var] = 0
            self.trail.append(asserting)
            return
        cid = len(self.clauses)
        # Put the asserting literal and the highest-level other literal in
        # the watch positions.
        lits = [asserting] + [l for l in learnt[:-1]]
        lits[1:] = sorted(
            lits[1:], key=lambda l: -self.level[abs(l)]
        )
        self.clauses.append(lits)
        self.origins.append(origins)
        for lit in lits[:2]:
            self.watches.setdefault(-lit, []).append(cid)
        self.learned_cids.append(cid)
        self.clause_activity[cid] = self.cla_inc
        self._assign(asserting, cid, None)
        if len(self.learned_cids) > self.max_learned:
            self._reduce_db()

    def _bump_clause(self, cid: int) -> None:
        if cid in self.clause_activity:
            self.clause_activity[cid] += self.cla_inc
            if self.clause_activity[cid] > 1e20:
                for key in self.clause_activity:
                    self.clause_activity[key] *= 1e-20
                self.cla_inc *= 1e-20

    def _reduce_db(self) -> None:
        """Delete the less active half of the learned clauses.

        Clauses currently serving as reasons on the trail are locked;
        binary clauses are cheap to keep.  Deleted slots are set to None
        and purged lazily from watch lists during propagation.
        """
        locked = {
            self.reason[abs(lit)]
            for lit in self.trail
            if self.reason[abs(lit)] is not None
        }
        candidates = [
            cid
            for cid in self.learned_cids
            if self.clauses[cid] is not None
            and len(self.clauses[cid]) > 2
            and cid not in locked
        ]
        candidates.sort(key=lambda cid: self.clause_activity.get(cid, 0.0))
        for cid in candidates[: len(candidates) // 2]:
            self.clauses[cid] = None
            self.clause_activity.pop(cid, None)
            self.n_deleted += 1
        self.learned_cids = [
            cid for cid in self.learned_cids if self.clauses[cid] is not None
        ]
        self.max_learned = int(self.max_learned * 1.2)
        self.n_reductions += 1

    def _pick_branch_var(self) -> Optional[int]:
        while self.order:
            _, var = heapq.heappop(self.order)
            if self.value[var] is None:
                return var
        return None


def solve(cnf: CNF) -> SATResult:
    """Solve ``cnf``; convenience wrapper constructing a fresh solver."""
    return Solver(cnf).solve()
