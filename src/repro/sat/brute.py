"""Brute-force SAT reference used to validate the CDCL solver in tests."""

from __future__ import annotations

from itertools import product
from typing import Dict, Optional

from repro.sat.cnf import CNF

__all__ = ["brute_force_solve"]


def brute_force_solve(cnf: CNF) -> Optional[Dict[int, bool]]:
    """Return some model of ``cnf`` or None; exponential, tests only."""
    n = cnf.num_vars
    if n > 22:
        raise ValueError("brute force limited to 22 variables")
    for bits in product((False, True), repeat=n):
        if cnf.evaluate(bits):
            return {v: bits[v - 1] for v in range(1, n + 1)}
    return None
