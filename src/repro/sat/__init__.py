"""CDCL SAT solver with unsat-core extraction (the zchaff stand-in).

The Jedd translator's physical domain assignment (paper section 3.3)
encodes its constraints as CNF and needs (a) a complete solver and (b)
unsatisfiable cores for error reporting.  Both are provided here.
"""

from repro.sat.brute import brute_force_solve
from repro.sat.cnf import CNF, CNFError
from repro.sat.solver import SATResult, SolveStats, Solver, solve

__all__ = [
    "CNF",
    "CNFError",
    "SATResult",
    "SolveStats",
    "Solver",
    "solve",
    "brute_force_solve",
]
