"""CNF formulas and DIMACS serialization.

The Jedd translator encodes the physical domain assignment problem in
conjunctive normal form (section 3.3.2) and ships it to a SAT solver;
this module is the formula container.  Literals use the DIMACS
convention: variables are positive integers, a negated literal is the
negated integer.  Clause indices (their position in :attr:`CNF.clauses`)
are the currency of unsat cores.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

__all__ = ["CNF", "CNFError"]


class CNFError(Exception):
    """Raised for malformed clauses or DIMACS input."""


class CNF:
    """A formula in conjunctive normal form.

    Clauses are stored as tuples of non-zero integers.  Tautological
    clauses (containing both ``v`` and ``-v``) are kept as written --
    the solver treats them as trivially satisfied -- so that clause
    indices reported in unsat cores always match what the encoder added.
    """

    def __init__(self, num_vars: int = 0) -> None:
        if num_vars < 0:
            raise CNFError("num_vars must be non-negative")
        self.num_vars = num_vars
        self.clauses: List[Tuple[int, ...]] = []

    def new_var(self) -> int:
        """Allocate and return a fresh variable."""
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, literals: Iterable[int]) -> int:
        """Add a clause; returns its index (for unsat-core reporting)."""
        clause = tuple(dict.fromkeys(literals))  # dedupe, keep order
        for lit in clause:
            if lit == 0:
                raise CNFError("literal 0 is not allowed")
            if abs(lit) > self.num_vars:
                self.num_vars = abs(lit)
        self.clauses.append(clause)
        return len(self.clauses) - 1

    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self) -> Iterator[Tuple[int, ...]]:
        return iter(self.clauses)

    @property
    def num_literals(self) -> int:
        """Total literal occurrences (the "Literals" column of Table 1)."""
        return sum(len(c) for c in self.clauses)

    def evaluate(self, model: Sequence[bool]) -> bool:
        """Check a model given as ``model[var - 1]`` truth values."""
        for clause in self.clauses:
            if not any(
                (lit > 0) == model[abs(lit) - 1] for lit in clause
            ):
                return False
        return True

    # ------------------------------------------------------------------
    # DIMACS
    # ------------------------------------------------------------------

    def to_dimacs(self) -> str:
        """Serialize in DIMACS ``cnf`` format."""
        lines = [f"p cnf {self.num_vars} {len(self.clauses)}"]
        for clause in self.clauses:
            lines.append(" ".join(str(lit) for lit in clause) + " 0")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_dimacs(cls, text: str) -> "CNF":
        """Parse a DIMACS ``cnf`` file body."""
        cnf = cls()
        declared_vars = None
        pending: List[int] = []
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise CNFError(f"bad problem line: {line!r}")
                declared_vars = int(parts[2])
                continue
            for tok in line.split():
                lit = int(tok)
                if lit == 0:
                    cnf.add_clause(pending)
                    pending = []
                else:
                    pending.append(lit)
        if pending:
            raise CNFError("clause not terminated by 0")
        if declared_vars is not None:
            cnf.num_vars = max(cnf.num_vars, declared_vars)
        return cnf
