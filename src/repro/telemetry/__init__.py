"""repro.telemetry: unified observability for the whole stack.

The paper's section 4.3 profiler attributes time and shapes to relational
operations; this package extends that attribution down through the
kernels, following Figure 1 top to bottom:

- interpreter statements (``jedd/interp.py``) open *spans* tagged with
  their source position,
- the relational ops they trigger (``relations/relation.py``) and the
  BDD/ZDD/SAT kernel calls underneath nest inside them,
- kernel counters (apply-cache hits per op tag, unique-table load, GC
  pauses, reorder passes, CDCL conflicts/decisions/propagations) land in
  a metrics registry,

and the result exports as a Chrome trace-event JSON (``chrome://tracing``
/ Perfetto), a plain-text report, or rows in the profiler's SQL store.

Usage::

    from repro import telemetry

    tel = telemetry.enable()
    tel.instrument_universe(universe)
    with tel.span("pointsto.solve"):
        solver.solve()
    print(tel.text_report())
    tel.write_chrome_trace("trace.json")
    telemetry.disable()

Cost model: while disabled (the default) the module-level singleton is a
no-op object and every instrumented call site does a single attribute
test before calling straight through — no dict lookups, no allocation.
The raw kernel counters in ``repro.bdd.stats`` are always on (plain
integer bumps next to existing cache probes); the registry reads them
lazily at snapshot time.
"""

from __future__ import annotations

import functools
from typing import Optional, Union

from repro.telemetry.export import (
    chrome_trace_events,
    text_report,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.telemetry.exposition import check_exposition, exposition_text
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.sampler import MetricsServer, Sampler
from repro.telemetry.session import NULL_TELEMETRY, NullTelemetry, Telemetry
from repro.telemetry.tracer import Span, SpanTracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "NullTelemetry",
    "Sampler",
    "Span",
    "SpanTracer",
    "Telemetry",
    "active",
    "check_exposition",
    "chrome_trace_events",
    "disable",
    "enable",
    "exposition_text",
    "is_enabled",
    "span",
    "text_report",
    "traced",
    "validate_chrome_trace",
    "write_chrome_trace",
]

#: The active session. Instrumented hot paths read this module attribute
#: and test ``.enabled`` — the only per-call cost while disabled.
_active: Union[Telemetry, NullTelemetry] = NULL_TELEMETRY


def enable(session: Optional[Telemetry] = None, **kwargs: object) -> Telemetry:
    """Activate telemetry globally and return the session.

    Passing an existing :class:`Telemetry` re-activates it (keeping its
    collected data); otherwise a fresh session is created with ``kwargs``
    forwarded to the constructor.  If a different session was already
    active it is detached first.
    """
    global _active
    if session is None:
        session = Telemetry(**kwargs)  # type: ignore[arg-type]
    if isinstance(_active, Telemetry) and _active is not session:
        _active.detach()
    _active = session
    return session


def disable() -> Optional[Telemetry]:
    """Deactivate telemetry; returns the session that was active (its
    collected metrics and spans stay readable) or None."""
    global _active
    previous = _active
    if isinstance(previous, Telemetry):
        previous.detach()
    _active = NULL_TELEMETRY
    return previous if isinstance(previous, Telemetry) else None


def active() -> Union[Telemetry, NullTelemetry]:
    """The active session (the no-op singleton when disabled)."""
    return _active


def is_enabled() -> bool:
    return _active.enabled


def span(name: str, cat: str = "host", **args: object):
    """Module-level convenience: ``with telemetry.span("phase"): ...``."""
    return _active.span(name, cat, **args)


def traced(name: str, cat: str = "host"):
    """Decorator opening a span around each call of the wrapped function.

    While disabled the wrapper costs one module-global read plus one
    attribute test before tail-calling the original, which stays
    reachable as ``__wrapped__`` (the overhead benchmark compares the
    two).  Used by ``relations/relation.py`` and the backend adapters.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tel = _active
            if not tel.enabled:
                return fn(*args, **kwargs)
            with tel.tracer.span(name, cat):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
