"""Hierarchical span tracer.

A span is one timed region — a Jedd interpreter statement, the relational
operation it triggered, or the kernel call underneath — and spans opened
while another is active become its children, so one statement yields a
tree: ``<global>:12,1 -> relation.join -> bdd.match``.

Spans are recorded with strict stack discipline (the runtime is single
threaded), which the Chrome-trace exporter relies on to emit balanced
B/E event pairs.  Each span optionally snapshots a flat dict of raw
kernel counters on entry and stores the non-zero deltas on exit, so a
trace answers "this join cost 40k apply-cache misses" directly.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, List, Optional

__all__ = ["Span", "SpanTracer"]


class Span:
    """One node of the trace tree.  ``end`` is None while still open."""

    __slots__ = (
        "name",
        "cat",
        "start",
        "end",
        "args",
        "depth",
        "site",
        "index",
        "parent",
        "_snap",
    )

    def __init__(
        self,
        name: str,
        cat: str,
        start: float,
        depth: int,
        site: Optional[str],
        index: int,
        parent: int,
    ) -> None:
        self.name = name
        self.cat = cat
        self.start = start
        self.end: Optional[float] = None
        self.args: Dict[str, object] = {}
        self.depth = depth
        self.site = site
        self.index = index
        self.parent = parent
        self._snap: Optional[Dict[str, float]] = None

    @property
    def seconds(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name!r} cat={self.cat} depth={self.depth} dur={self.seconds:.6f})"


class _SpanHandle:
    """Context manager returned by ``SpanTracer.span``."""

    __slots__ = ("_tracer", "_span", "_site")

    def __init__(self, tracer: "SpanTracer", span: Optional[Span], site: Optional[str]) -> None:
        self._tracer = tracer
        self._span = span
        self._site = site

    def __enter__(self) -> Optional[Span]:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._close(self._span, exc_type)
        if self._site is not None:
            self._tracer.pop_site()
        return False


class SpanTracer:
    """Records a tree of spans plus a source-position site stack."""

    def __init__(
        self,
        delta_source: Optional[Callable[[], Dict[str, float]]] = None,
        max_spans: int = 200_000,
    ) -> None:
        self.spans: List[Span] = []
        self.dropped = 0
        self.max_spans = max_spans
        self.delta_source = delta_source
        self.t0 = perf_counter()
        self._stack: List[Span] = []
        self._sites: List[str] = []

    # -- site stack ---------------------------------------------------

    def push_site(self, site: str) -> None:
        self._sites.append(site)

    def pop_site(self) -> None:
        if self._sites:
            self._sites.pop()

    def current_site(self) -> Optional[str]:
        return self._sites[-1] if self._sites else None

    # -- spans --------------------------------------------------------

    def span(self, name: str, cat: str = "host", **args: object) -> _SpanHandle:
        """Open a span; use as ``with tracer.span("pointsto.iter"): ...``."""
        return self._open(name, cat, None, args)

    def site_span(self, name: str, site: str, cat: str = "interp", **args: object) -> _SpanHandle:
        """Open a span that also scopes ``site`` for everything beneath it."""
        self.push_site(site)
        return self._open(name, cat, site, args)

    def _open(self, name: str, cat: str, site: Optional[str], args: Dict[str, object]) -> _SpanHandle:
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return _SpanHandle(self, None, site)
        span = Span(
            name,
            cat,
            perf_counter(),
            len(self._stack),
            site if site is not None else self.current_site(),
            len(self.spans),
            self._stack[-1].index if self._stack else -1,
        )
        if args:
            span.args.update(args)
        if self.delta_source is not None:
            span._snap = self.delta_source()
        self.spans.append(span)
        self._stack.append(span)
        return _SpanHandle(self, span, site)

    def _close(self, span: Optional[Span], exc_type) -> None:
        if span is None:
            return
        # Pop everything above (and including) the span; anything above
        # means a child failed to close, which only happens if user code
        # bypassed the context manager -- close those too so the tree
        # stays balanced.
        while self._stack:
            top = self._stack.pop()
            now = perf_counter()
            if top.end is None:
                top.end = now
            if top is span:
                break
        if exc_type is not None:
            span.args["error"] = exc_type.__name__
        if span._snap is not None and self.delta_source is not None:
            after = self.delta_source()
            before = span._snap
            delta = {
                key: round(value - before.get(key, 0.0), 9)
                for key, value in after.items()
                if value != before.get(key, 0.0)
            }
            if delta:
                span.args["delta"] = delta
            span._snap = None

    def add_complete(
        self,
        name: str,
        seconds: float,
        cat: str = "host",
        **args: object,
    ) -> Optional[Span]:
        """Record an already-finished region (e.g. a GC pause reported by
        a listener after the sweep) as a leaf span ending now."""
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return None
        end = perf_counter()
        span = Span(
            name,
            cat,
            end - seconds,
            len(self._stack),
            self.current_site(),
            len(self.spans),
            self._stack[-1].index if self._stack else -1,
        )
        span.end = end
        if args:
            span.args.update(args)
        self.spans.append(span)
        return span

    def finish(self) -> None:
        """Close any spans left open (abandoned via exceptions outside
        the context manager); exporters call this before serialising."""
        now = perf_counter()
        while self._stack:
            top = self._stack.pop()
            if top.end is None:
                top.end = now

    def export_spans(self) -> List[Dict[str, object]]:
        """The recorded spans as plain picklable dicts.

        Timestamps stay in this process's raw ``perf_counter`` domain;
        a consumer in another process aligns them with a measured clock
        offset (see ``repro.relations.parallel``).  Open spans are
        closed first so the export always carries balanced trees.
        """
        self.finish()
        out: List[Dict[str, object]] = []
        for span in self.spans:
            d: Dict[str, object] = {
                "name": span.name,
                "cat": span.cat,
                "start": span.start,
                "end": span.end if span.end is not None else span.start,
                "index": span.index,
                "parent": span.parent,
                "depth": span.depth,
            }
            if span.site is not None:
                d["site"] = span.site
            if span.args:
                d["args"] = dict(span.args)
            out.append(d)
        return out

    def clear(self) -> None:
        self.spans.clear()
        self._stack.clear()
        self._sites.clear()
        self.dropped = 0
        self.t0 = perf_counter()
