"""``python -m repro.telemetry.top`` — a tiny top(1) for a live solve.

Reads the JSON snapshot a :class:`~repro.telemetry.sampler.Sampler`
exposes (``--file SNAP.json`` for the sampler's file mode, ``--url``
for a :class:`~repro.telemetry.sampler.MetricsServer`'s
``/metrics.json``) and renders the health numbers an operator watches
during a long solve: node tables vs. their high-water marks, cache
occupancy, RSS, GC/reorder totals, and parallel executor health.

``--once`` prints a single frame (the mode CI and tests use);
otherwise the screen refreshes every ``--interval`` seconds until
interrupted.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional, Sequence

__all__ = ["render", "read_snapshot", "main"]


def read_snapshot(
    path: Optional[str] = None, url: Optional[str] = None
) -> Dict[str, object]:
    """Load a snapshot document from a sampler file or a metrics server."""
    if (path is None) == (url is None):
        raise ValueError("exactly one of path/url is required")
    if path is not None:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    from urllib.request import urlopen

    with urlopen(url, timeout=5.0) as resp:  # noqa: S310 - localhost introspection
        return json.loads(resp.read().decode("utf-8"))


def _fmt(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:,.3f}"
    value = int(value)
    if abs(value) >= 10_000_000:
        return f"{value / 1e6:,.1f}M"
    return f"{value:,}"


def _fmt_bytes(value: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024 or unit == "GiB":
            return f"{value:,.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024.0
    return f"{value:,.1f}GiB"  # pragma: no cover - unreachable


def render(doc: Dict[str, object], width: int = 72) -> str:
    """One frame of the top view for a snapshot document."""
    metrics: Dict[str, float] = dict(doc.get("metrics") or {})  # type: ignore[arg-type]
    age = ""
    if isinstance(doc.get("unixtime"), (int, float)):
        age = f" (sampled {max(0.0, time.time() - float(doc['unixtime'])):.1f}s ago)"
    lines: List[str] = [f"repro-jedd metrics{age}", "=" * width]

    rss = metrics.get("process.rss_bytes")
    if rss is not None:
        peak = metrics.get("process.rss_peak_bytes", rss)
        lines.append(f"process   rss {_fmt_bytes(rss)}  peak {_fmt_bytes(peak)}")

    # One row per instrumented manager: live/peak nodes, load, caches.
    prefixes = sorted({
        name.split(".table.", 1)[0]
        for name in metrics
        if ".table." in name
    })
    for prefix in prefixes:
        get = lambda key, d=0.0: metrics.get(f"{prefix}.{key}", d)  # noqa: E731
        live = get("table.live_nodes")
        peak = get("table.peak_live_nodes", live)
        row = (
            f"{prefix:<8} nodes {_fmt(live)}/{_fmt(peak)} peak"
            f"  load {get('table.load'):.2f}"
            f"  gc {_fmt(get('gc.runs'))}"
            f"  reorders {_fmt(get('reorder.runs'))}"
        )
        caches = {
            name.split("cache=", 1)[1].rstrip("}"): value
            for name, value in metrics.items()
            if name.startswith(f"{prefix}.cache.entries{{")
        }
        if caches:
            busiest = sorted(caches.items(), key=lambda kv: -kv[1])[:3]
            row += "  cache " + " ".join(
                f"{k}:{_fmt(v)}" for k, v in busiest
            )
        lines.append(row)
        hit_rate = metrics.get(f"{prefix}.apply_cache.hit_rate")
        if hit_rate is not None:
            lines.append(f"{'':<8} apply-cache hit rate {hit_rate * 100:.1f}%")
        frontier = metrics.get(f"{prefix}.frontier.max_frontier")
        if frontier is not None:
            lines.append(
                f"{'':<8} frontier max {_fmt(frontier)}"
                f"  vector batches {_fmt(metrics.get(f'{prefix}.frontier.batches_vector', 0))}"
                f"  scalar {_fmt(metrics.get(f'{prefix}.frontier.batches_scalar', 0))}"
            )

    par = {
        name.split(".", 1)[1]: value
        for name, value in metrics.items()
        if name.startswith("parallel.") and "{" not in name
    }
    if par:
        lines.append(
            "parallel  workers {w}  rounds {r}  retries {rt}  restarts {rs}"
            "  fallbacks {fb}".format(
                w=_fmt(par.get("workers", 0)),
                r=_fmt(par.get("rounds", 0)),
                rt=_fmt(par.get("retries", 0)),
                rs=_fmt(par.get("restarts", 0)),
                fb=_fmt(par.get("serial_fallback_tasks", 0)),
            )
        )
        lines.append(
            "          shipped {s}  returned {rt}  wire-cache hits {h}"
            " saved {sv}".format(
                s=_fmt_bytes(par.get("bytes_shipped", 0)),
                rt=_fmt_bytes(par.get("bytes_returned", 0)),
                h=_fmt(par.get("wire_cache_hits", 0)),
                sv=_fmt_bytes(par.get("bytes_saved", 0)),
            )
        )
        if par.get("worker_spans"):
            lines.append(
                "          worker spans {s} (dropped {d})".format(
                    s=_fmt(par.get("worker_spans", 0)),
                    d=_fmt(par.get("worker_spans_dropped", 0)),
                )
            )

    spans = metrics.get("telemetry.spans")
    if spans is not None:
        dropped = metrics.get("telemetry.spans_dropped", 0)
        tail = f"  dropped {_fmt(dropped)}" if dropped else ""
        lines.append(f"tracer    spans {_fmt(spans)}{tail}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.top", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--file", help="sampler snapshot file (<expose_path>.json)")
    source.add_argument("--url", help="metrics server /metrics.json URL")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="refresh period in seconds (default 2)")
    parser.add_argument("--once", action="store_true",
                        help="print one frame and exit")
    args = parser.parse_args(argv)

    url = args.url
    if url and url.endswith("/metrics"):
        url += ".json"
    while True:
        try:
            doc = read_snapshot(path=args.file, url=url)
        except Exception as err:
            print(f"snapshot unavailable: {err}", file=sys.stderr)
            if args.once:
                return 1
            time.sleep(args.interval)
            continue
        frame = render(doc)
        if args.once:
            print(frame)
            return 0
        # Clear + home, like watch(1); plain prints if not a tty.
        if sys.stdout.isatty():
            sys.stdout.write("\x1b[2J\x1b[H")
        print(frame, flush=True)
        time.sleep(args.interval)


if __name__ == "__main__":
    raise SystemExit(main())
