"""Metric primitives: counters, gauges, and histograms with labels.

The registry is deliberately tiny.  Kernel hot paths (``bdd/manager.py``,
``bdd/zdd.py``) do *not* call into it — they bump plain integer fields on
their always-on ``KernelStats`` objects, and the registry pulls those raw
numbers in at snapshot time (see ``repro.telemetry.session``).  Push-style
updates (SAT solve results, GC pauses, reorder passes) happen at most a
few times per second, so a dict lookup there is fine.

A metric name plus a sorted tuple of ``(label, value)`` pairs identifies a
series, mirroring the Prometheus data model the ROADMAP's future perf
dashboards will want to scrape.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "format_labels"]

LabelPairs = Tuple[Tuple[str, str], ...]


def format_labels(labels: LabelPairs) -> str:
    """Render label pairs as ``{k=v,k2=v2}`` (empty string when unlabelled)."""
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


class Counter:
    """Monotonically increasing count (events, cache hits, conflicts)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelPairs = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def set_total(self, total: float) -> None:
        """Overwrite the running total.

        Used by pull-style collectors that mirror an external raw counter
        (kernel stats) into the registry; callers must only ever pass
        non-decreasing values.
        """
        self.value = total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}{format_labels(self.labels)}={self.value})"


class Gauge:
    """Point-in-time value (table size, load factor, live nodes)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelPairs = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name}{format_labels(self.labels)}={self.value})"


class Histogram:
    """Streaming distribution (GC pause, reorder duration, span length).

    Keeps count/sum/min/max plus fixed buckets; enough for a text report
    or Chrome-trace args without storing every observation.
    """

    __slots__ = ("name", "labels", "count", "total", "min", "max", "bounds", "buckets")

    #: Default bucket upper bounds, in the metric's own unit (seconds for
    #: all current users), roughly log-spaced from 10us to 10s.
    DEFAULT_BOUNDS = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)

    def __init__(
        self,
        name: str,
        labels: LabelPairs = (),
        bounds: Optional[Iterable[float]] = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.bounds = tuple(bounds) if bounds is not None else self.DEFAULT_BOUNDS
        self.buckets = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Histogram({self.name}{format_labels(self.labels)} "
            f"count={self.count} sum={self.total:.6f})"
        )


class MetricsRegistry:
    """Registry of metric series keyed by name + labels.

    ``counter``/``gauge``/``histogram`` create on first use and return the
    existing series afterwards, so call sites never need to pre-register.
    """

    def __init__(self) -> None:
        self._series: Dict[Tuple[str, str, LabelPairs], object] = {}

    @staticmethod
    def _key(kind: str, name: str, labels: Dict[str, str]) -> Tuple[str, str, LabelPairs]:
        pairs = tuple(sorted((k, str(v)) for k, v in labels.items()))
        return (kind, name, pairs)

    def counter(self, name: str, **labels: str) -> Counter:
        key = self._key("counter", name, labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = Counter(name, key[2])
        return series  # type: ignore[return-value]

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = self._key("gauge", name, labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = Gauge(name, key[2])
        return series  # type: ignore[return-value]

    def histogram(self, name: str, **labels: str) -> Histogram:
        key = self._key("histogram", name, labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = Histogram(name, key[2])
        return series  # type: ignore[return-value]

    def series(self) -> List[object]:
        """All registered series, sorted by (name, labels) for stable output."""
        return [self._series[k] for k in sorted(self._series, key=lambda k: (k[1], k[2]))]

    def snapshot(self) -> Dict[str, float]:
        """Flatten the registry into ``{"name{labels}": value}``.

        Histograms contribute ``_count``/``_sum``/``_mean``/``_max``
        derived series so a flat snapshot still carries distribution
        shape.
        """
        out: Dict[str, float] = {}
        for series in self.series():
            label = format_labels(series.labels)  # type: ignore[attr-defined]
            if isinstance(series, Histogram):
                base = f"{series.name}{label}"
                out[f"{base}_count"] = series.count
                out[f"{base}_sum"] = series.total
                if series.count:
                    out[f"{base}_mean"] = series.mean
                    out[f"{base}_max"] = series.max
            else:
                out[f"{series.name}{label}"] = series.value  # type: ignore[attr-defined]
        return out

    def clear(self) -> None:
        self._series.clear()
