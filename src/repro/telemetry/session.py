"""The telemetry session: one registry + one tracer + kernel wiring.

A ``Telemetry`` object owns a :class:`MetricsRegistry` and a
:class:`SpanTracer` and knows how to attach itself to the kernels:

- ``instrument_manager`` subscribes to a BDD/ZDD manager's GC and
  reorder listeners and remembers the manager so snapshots can pull its
  raw ``KernelStats`` counters (the kernels never call the registry on
  their hot paths — see ``repro.bdd.stats``);
- ``record_sat`` folds a solver's per-solve stat deltas into counters;
- ``metrics_snapshot`` / ``text_report`` / ``write_chrome_trace`` are
  the read side.

``NULL_TELEMETRY`` is the module-level no-op used when telemetry is
disabled: instrumented code does one attribute check (``tel.enabled``)
and calls straight through — no dict lookups, no allocation.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.telemetry import export as _export
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import SpanTracer

__all__ = ["Telemetry", "NullTelemetry", "NULL_TELEMETRY"]


class _NullSpanHandle:
    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpanHandle()


class NullTelemetry:
    """Do-nothing stand-in active while telemetry is disabled."""

    enabled = False
    registry = None
    tracer = None

    def span(self, name, cat="host", **args):
        return _NULL_SPAN

    def add_complete(self, name, seconds, cat="host", **args):
        pass

    def statement_span(self, site, **args):
        return _NULL_SPAN

    def push_site(self, site):
        pass

    def pop_site(self):
        pass

    def instrument_manager(self, manager, name=None):
        return None

    def instrument_universe(self, universe, name=None):
        return None

    def record_sat(self, after, before=None, name="sat"):
        pass

    def add_worker_spans(self, name, pid, spans, dropped=0, tid=1):
        pass

    def worker_lanes(self):
        return []

    def record_parallel(self, stats, prefix="parallel"):
        pass


NULL_TELEMETRY = NullTelemetry()


class Telemetry:
    """A live telemetry session (see module docstring)."""

    enabled = True

    def __init__(self, max_spans: int = 200_000, span_deltas: bool = True) -> None:
        self.registry = MetricsRegistry()
        self.tracer = SpanTracer(
            delta_source=self._kernel_counters if span_deltas else None,
            max_spans=max_spans,
        )
        self._managers: List[Tuple[str, object]] = []
        self._listeners: List[Tuple[list, object]] = []
        #: Span lanes shipped back from worker processes (see
        #: :meth:`add_worker_spans`), keyed by (pid, tid).
        self._worker_lanes: Dict[Tuple[int, int], dict] = {}

    # -- spans / sites -------------------------------------------------

    def span(self, name: str, cat: str = "host", **args: object):
        return self.tracer.span(name, cat, **args)

    def add_complete(self, name: str, seconds: float, cat: str = "host", **args: object) -> None:
        """Record an already-timed event (e.g. a worker-side task whose
        duration was measured in another process)."""
        self.tracer.add_complete(name, seconds, cat, **args)

    def statement_span(self, site: str, **args: object):
        """Span for one interpreter statement; also scopes ``site`` so
        relation/kernel spans underneath inherit the source position."""
        return self.tracer.site_span(site, site, cat="interp", **args)

    def push_site(self, site: str) -> None:
        self.tracer.push_site(site)

    def pop_site(self) -> None:
        self.tracer.pop_site()

    # -- kernel wiring -------------------------------------------------

    def instrument_manager(self, manager: object, name: Optional[str] = None) -> str:
        """Start tracking a BDD/ZDD manager; idempotent per manager.

        Returns the metric prefix chosen for it (``bdd``, ``zdd``,
        ``bdd2``, ... when several managers of one kind are tracked).
        """
        for prefix, existing in self._managers:
            if existing is manager:
                return prefix
        base = name or getattr(manager, "telemetry_name", type(manager).__name__.lower())
        prefix, n = base, 2
        while any(p == prefix for p, _ in self._managers):
            prefix = f"{base}{n}"
            n += 1
        self._managers.append((prefix, manager))

        registry = self.registry
        tracer = self.tracer

        gc_listeners = getattr(manager, "gc_listeners", None)
        if gc_listeners is not None:
            def on_gc(seconds: float, freed: int, _prefix: str = prefix) -> None:
                registry.histogram(f"{_prefix}.gc.pause_seconds").observe(seconds)
                registry.counter(f"{_prefix}.gc.reclaimed_nodes").inc(freed)
                tracer.add_complete(f"{_prefix}.gc", seconds, cat="gc", freed=freed)

            gc_listeners.append(on_gc)
            self._listeners.append((gc_listeners, on_gc))

        reorder_listeners = getattr(manager, "reorder_listeners", None)
        if reorder_listeners is not None:
            def on_reorder(event: object, _prefix: str = prefix) -> None:
                seconds = getattr(event, "seconds", 0.0)
                before = getattr(event, "nodes_before", 0)
                after = getattr(event, "nodes_after", 0)
                registry.histogram(f"{_prefix}.reorder.seconds").observe(seconds)
                registry.counter(f"{_prefix}.reorder.nodes_removed").inc(max(0, before - after))
                tracer.add_complete(
                    f"{_prefix}.reorder", seconds, cat="gc",
                    nodes_before=before, nodes_after=after,
                    trigger=getattr(event, "trigger", "?"),
                )

            reorder_listeners.append(on_reorder)
            self._listeners.append((reorder_listeners, on_reorder))
        return prefix

    def instrument_universe(self, universe: object, name: Optional[str] = None) -> str:
        """Convenience: instrument a finalized ``Universe``'s manager."""
        manager = getattr(universe, "manager", None)
        if manager is None:
            raise ValueError("universe has no manager (finalize() it first)")
        return self.instrument_manager(manager, name)

    def detach(self) -> None:
        """Unhook all manager listeners (called on ``telemetry.disable``)."""
        for listeners, fn in self._listeners:
            try:
                listeners.remove(fn)
            except ValueError:
                pass
        self._listeners.clear()

    # -- worker lanes --------------------------------------------------

    def add_worker_spans(
        self,
        name: str,
        pid: int,
        spans: List[dict],
        dropped: int = 0,
        tid: int = 1,
    ) -> None:
        """Merge one worker's shipped span buffer into the session.

        ``spans`` are the dicts of ``SpanTracer.export_spans`` with
        timestamps *already aligned* into this (coordinator) process's
        ``perf_counter`` domain; the caller measures the clock offset
        (see ``repro.relations.parallel``).  Buffers from the same
        (pid, tid) accumulate into one lane across rounds; span indices
        are re-based so parent links stay intact within the lane.
        """
        lane = self._worker_lanes.get((pid, tid))
        if lane is None:
            lane = self._worker_lanes[(pid, tid)] = {
                "name": name, "pid": pid, "tid": tid,
                "spans": [], "dropped": 0,
            }
        base = len(lane["spans"])
        for span in spans:
            shifted = dict(span)
            shifted["index"] = span["index"] + base
            if span["parent"] >= 0:
                shifted["parent"] = span["parent"] + base
            lane["spans"].append(shifted)
        lane["dropped"] += int(dropped)
        self.registry.counter("parallel.worker_spans").inc(len(spans))
        if dropped:
            self.registry.counter("parallel.worker_spans_dropped").inc(
                int(dropped)
            )

    def worker_lanes(self) -> List[dict]:
        """The accumulated worker lanes, ordered by (pid, tid)."""
        return [self._worker_lanes[k] for k in sorted(self._worker_lanes)]

    def record_parallel(self, stats: Optional[dict], prefix: str = "parallel") -> None:
        """Fold a parallel solve's executor counters (retries, restarts,
        wire-cache hits, bytes shipped...) into gauges the exposition
        and ``top`` views can read."""
        if not stats:
            return
        for key, value in stats.items():
            if isinstance(value, bool):
                self.registry.gauge(f"{prefix}.{key}").set(float(value))
            elif isinstance(value, (int, float)):
                self.registry.gauge(f"{prefix}.{key}").set(value)

    def record_sat(self, after: object, before: Optional[object] = None, name: str = "sat") -> None:
        """Fold one solve's stats into counters.

        ``after``/``before`` are ``SolveStats``-like (dataclass or
        mapping); only the delta is added, so a solver reused across
        many solves is not double counted.
        """
        a = dataclasses.asdict(after) if dataclasses.is_dataclass(after) else dict(after)  # type: ignore[arg-type]
        if before is None:
            b: Dict[str, float] = {}
        elif dataclasses.is_dataclass(before):
            b = dataclasses.asdict(before)  # type: ignore[arg-type]
        else:
            b = dict(before)  # type: ignore[arg-type]
        self.registry.counter(f"{name}.solves").inc()
        for key, value in a.items():
            if isinstance(value, (int, float)):
                self.registry.counter(f"{name}.{key}").inc(value - b.get(key, 0))

    # -- read side -----------------------------------------------------

    def _kernel_counters(self) -> Dict[str, float]:
        """Cheap flat view of raw kernel counters, used for span deltas."""
        out: Dict[str, float] = {}
        for prefix, manager in self._managers:
            stats = getattr(manager, "stats", None)
            if stats is None:
                continue
            hits, misses = stats.op_totals()
            out[f"{prefix}.apply.hits"] = hits
            out[f"{prefix}.apply.misses"] = misses
            out[f"{prefix}.nodes_created"] = stats.nodes_created
            out[f"{prefix}.gc.runs"] = stats.gc_runs
        return out

    def collect(self) -> None:
        """Pull raw kernel counters and table gauges into the registry."""
        registry = self.registry
        for prefix, manager in self._managers:
            stats = getattr(manager, "stats", None)
            if stats is not None:
                for op, hits, misses in stats.per_op():
                    registry.counter(f"{prefix}.apply_cache.hits", op=op).set_total(hits)
                    registry.counter(f"{prefix}.apply_cache.misses", op=op).set_total(misses)
                for cache, hits, misses in stats.scalar_caches():
                    if hits or misses:
                        registry.counter(f"{prefix}.{cache}.hits").set_total(hits)
                        registry.counter(f"{prefix}.{cache}.misses").set_total(misses)
                registry.counter(f"{prefix}.nodes_created").set_total(stats.nodes_created)
                registry.counter(f"{prefix}.gc.runs").set_total(stats.gc_runs)
                registry.gauge(f"{prefix}.gc.total_seconds").set(stats.gc_seconds)
                registry.counter(f"{prefix}.reorder.runs").set_total(stats.reorder_runs)
                registry.gauge(f"{prefix}.reorder.total_seconds").set(stats.reorder_seconds)
            table = getattr(manager, "table_stats", None)
            if table is not None:
                for key, value in table().items():
                    registry.gauge(f"{prefix}.table.{key}").set(value)

    def metrics_snapshot(self) -> Dict[str, float]:
        """Registry snapshot plus derived per-op-tag cache hit rates."""
        self.collect()
        out = self.registry.snapshot()
        for prefix, manager in self._managers:
            stats = getattr(manager, "stats", None)
            if stats is None:
                continue
            total_h = total_m = 0
            for op, hits, misses in stats.per_op():
                total_h += hits
                total_m += misses
                if hits + misses:
                    out[f"{prefix}.apply_cache.hit_rate{{op={op}}}"] = hits / (hits + misses)
            if total_h + total_m:
                out[f"{prefix}.apply_cache.hit_rate"] = total_h / (total_h + total_m)
        out["telemetry.spans"] = len(self.tracer.spans)
        out["telemetry.spans_dropped"] = self.tracer.dropped
        if self._worker_lanes:
            out["telemetry.worker_lanes"] = len(self._worker_lanes)
            out["telemetry.worker_spans"] = sum(
                len(l["spans"]) for l in self._worker_lanes.values()
            )
            out["telemetry.worker_spans_dropped"] = sum(
                l["dropped"] for l in self._worker_lanes.values()
            )
        return out

    def prometheus_text(self) -> str:
        """The session's metrics in Prometheus text exposition format
        (``text/plain; version=0.0.4``), ready to serve or write."""
        from repro.telemetry import exposition as _exposition

        self.collect()
        extra = {
            "telemetry.spans": len(self.tracer.spans),
            "telemetry.spans_dropped": self.tracer.dropped,
        }
        return _exposition.exposition_text(self.registry, extra_gauges=extra)

    def json_snapshot(self) -> Dict[str, object]:
        """JSON-ready snapshot document (metrics + tracer bookkeeping),
        the payload behind ``/metrics.json`` and the sampler's snapshot
        file (what ``python -m repro.telemetry.top`` renders)."""
        import time as _time

        return {
            "schema": 1,
            "unixtime": _time.time(),
            "metrics": self.metrics_snapshot(),
        }

    def text_report(self, max_span_lines: int = 60) -> str:
        return _export.text_report(self.metrics_snapshot(), self.tracer, max_span_lines)

    def chrome_trace_events(self, process_name: str = "repro-jedd") -> List[dict]:
        return _export.chrome_trace_events(
            self.tracer, process_name, self.metrics_snapshot(),
            lanes=self.worker_lanes(),
        )

    def write_chrome_trace(self, path: str, process_name: str = "repro-jedd") -> int:
        return _export.write_chrome_trace(
            path, self.tracer, process_name, self.metrics_snapshot(),
            lanes=self.worker_lanes(),
        )

    def clear(self) -> None:
        """Reset registry, spans, and worker lanes, keeping
        manager/listener wiring."""
        self.registry.clear()
        self.tracer.clear()
        self._worker_lanes.clear()
