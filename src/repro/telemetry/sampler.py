"""Low-frequency gauge sampler + live export (file and localhost HTTP).

The registry's counters come from the kernels' always-on raw stats, but
*point-in-time* health — node-table size and high-water mark, apply/memo
cache occupancy, process RSS, arena frontier width, parallel executor
health — has to be observed periodically.  :class:`Sampler` does that on
a daemon thread at a configurable (default 1s) interval, cheap enough to
leave on for a whole solve: each tick is a handful of ``len()`` calls
and one ``/proc/self/status`` read, never touching kernel hot paths.

Export modes:

- ``expose_path`` — each tick atomically rewrites ``<path>`` with
  Prometheus text exposition and ``<path>.json`` with the JSON snapshot
  (for node-exporter textfile collection, CI artifacts, or
  ``python -m repro.telemetry.top --file``);
- :class:`MetricsServer` — a localhost-only HTTP endpoint serving
  ``/metrics`` (text exposition) and ``/metrics.json`` on demand, for a
  real Prometheus scrape or ``top --url`` against a long solve.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Callable, Dict, List, Optional

__all__ = ["Sampler", "MetricsServer", "process_rss_bytes"]


def process_rss_bytes() -> Optional[float]:
    """Resident set size of this process in bytes, or None when the
    platform exposes neither ``/proc/self/status`` nor ``resource``."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1]) * 1024.0
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        # ru_maxrss is peak (not current) RSS, in KiB on Linux; still a
        # useful upper bound where /proc is unavailable.
        return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) * 1024.0
    except Exception:
        return None


class Sampler:
    """Periodically fold point-in-time gauges into a session's registry.

    Use either one-shot (``sampler.sample()`` before reading metrics) or
    as a background thread (``start()``/``stop()``).  Thread-safety note:
    a tick only *reads* kernel structures (``len`` of dicts, integer
    fields) and *writes* registry gauges; concurrent mutation by the
    solve can at worst yield a slightly stale gauge value, never corrupt
    kernel state.
    """

    def __init__(
        self,
        session,
        interval: float = 1.0,
        expose_path: Optional[str] = None,
    ) -> None:
        self.session = session
        self.interval = max(0.05, float(interval))
        self.expose_path = expose_path
        self.samples_taken = 0
        self._providers: List[tuple] = []
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    def add_provider(
        self,
        fn: Callable[[], Optional[Dict[str, float]]],
        prefix: str = "parallel",
    ) -> None:
        """Register an extra gauge source; called each tick, its dict's
        numeric values are set as ``<prefix>.<key>`` gauges.  The
        canonical use is ``lambda: engine.parallel_stats`` so retry /
        restart / wire-cache health shows up in the exposition."""
        self._providers.append((prefix, fn))

    # -- one tick ------------------------------------------------------

    def sample(self) -> Dict[str, float]:
        """Take one sample; returns the gauge values set this tick."""
        session = self.session
        registry = session.registry
        out: Dict[str, float] = {}

        def gauge(name: str, value: float) -> None:
            registry.gauge(name).set(value)
            out[name] = value

        # Node tables + high-water marks (table_stats also advances the
        # peak_live_nodes high-water mark on the manager's raw stats).
        session.collect()
        for prefix, manager in getattr(session, "_managers", ()):
            cache_stats = getattr(manager, "cache_stats", None)
            if cache_stats is not None:
                for cache, size in cache_stats().items():
                    registry.gauge(
                        f"{prefix}.cache.entries", cache=cache
                    ).set(size)
                    out[f"{prefix}.cache.entries{{cache={cache}}}"] = size
            frontier = getattr(manager, "frontier_profile", None)
            if frontier is not None:
                prof = frontier()
                for key in (
                    "max_frontier",
                    "total_requests",
                    "batches_vector",
                    "batches_scalar",
                ):
                    if key in prof:
                        gauge(f"{prefix}.frontier.{key}", prof[key])
            # Out-of-core kernels export spill/sweep gauges: resident
            # vs cap, page-cache traffic, sorted-run population, rows
            # spilled from the sweep queues.
            ooc = getattr(manager, "ooc_profile", None)
            if ooc is not None:
                for key, value in ooc().items():
                    gauge(f"{prefix}.ooc.{key}", value)

        rss = process_rss_bytes()
        if rss is not None:
            gauge("process.rss_bytes", rss)
            peak = registry.gauge("process.rss_peak_bytes")
            if rss > peak.value:
                peak.set(rss)
                out["process.rss_peak_bytes"] = rss

        for prefix, provider in self._providers:
            try:
                stats = provider()
            except Exception:
                continue
            if not stats:
                continue
            for key, value in stats.items():
                if isinstance(value, bool):
                    gauge(f"{prefix}.{key}", float(value))
                elif isinstance(value, (int, float)):
                    gauge(f"{prefix}.{key}", value)

        self.samples_taken += 1
        registry.counter("sampler.ticks").set_total(self.samples_taken)
        if self.expose_path:
            self._expose()
        return out

    def _expose(self) -> None:
        """Atomically rewrite the exposition file pair (write to a temp
        sibling, then ``os.replace`` — readers never see a torn file)."""
        path = self.expose_path
        assert path is not None
        self._atomic_write(path, self.session.prometheus_text())
        self._atomic_write(
            path + ".json",
            json.dumps(self.session.json_snapshot(), sort_keys=True),
        )

    @staticmethod
    def _atomic_write(path: str, text: str) -> None:
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, path)

    # -- background thread ---------------------------------------------

    def start(self) -> "Sampler":
        if self._thread is not None:
            return self
        self._stop.clear()

        def run() -> None:
            while not self._stop.wait(self.interval):
                try:
                    self.sample()
                except Exception:
                    # A failed tick (e.g. a manager mid-rehash) must not
                    # kill the sampler; the next tick retries.
                    continue

        self._thread = threading.Thread(
            target=run, name="repro-metrics-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, final_sample: bool = True) -> None:
        thread, self._thread = self._thread, None
        if thread is not None:
            self._stop.set()
            thread.join(timeout=5.0)
        if final_sample:
            try:
                self.sample()
            except Exception:
                pass

    def __enter__(self) -> "Sampler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False


class MetricsServer:
    """Localhost HTTP endpoint serving the session's live metrics.

    Binds 127.0.0.1 only (this is an introspection port, not a service);
    ``port=0`` picks a free port, readable afterwards from ``.port`` /
    ``.url``.  ``GET /metrics`` returns Prometheus text exposition,
    ``GET /metrics.json`` the JSON snapshot; each request samples first
    when a sampler is attached, so numbers are scrape-time fresh.
    """

    def __init__(
        self,
        session,
        host: str = "127.0.0.1",
        port: int = 0,
        sampler: Optional[Sampler] = None,
    ) -> None:
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        from repro.telemetry.exposition import CONTENT_TYPE

        outer = self
        self.session = session
        self.sampler = sampler

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                if outer.sampler is not None:
                    try:
                        outer.sampler.sample()
                    except Exception:
                        pass
                if path in ("/metrics", "/"):
                    body = outer.session.prometheus_text().encode("utf-8")
                    ctype = CONTENT_TYPE
                elif path == "/metrics.json":
                    body = json.dumps(
                        outer.session.json_snapshot(), sort_keys=True
                    ).encode("utf-8")
                    ctype = "application/json"
                else:
                    self.send_error(404)
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: object) -> None:
                pass  # no stderr chatter from scrapes

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self.host, self.port = self._server.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-metrics-server",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        thread, self._thread = self._thread, None
        if thread is not None:
            self._server.shutdown()
            thread.join(timeout=5.0)
        self._server.server_close()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
