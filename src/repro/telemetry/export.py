"""Exporters: Chrome trace-event JSON, a validator for it, text reports.

The Chrome format is the trace-event JSON consumed by ``chrome://tracing``
and Perfetto: a ``traceEvents`` list of ``B``/``E`` (duration begin/end)
records with microsecond timestamps.  We emit explicit B/E pairs rather
than compact ``X`` events so nesting survives round-trips through tools
that stream events, and so CI can check the pairing is balanced.

``validate_chrome_trace`` is the schema check CI runs against the trace
emitted by ``examples/profiling_demo.py --trace``; it is also exposed as
``python -m repro.telemetry.export <file>``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.telemetry.tracer import Span, SpanTracer

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace",
    "validate_chrome_trace",
    "text_report",
]

_PID = 1
_TID = 1


def _emit_lane(
    events: List[dict],
    spans: Sequence[Dict[str, object]],
    t0: float,
    pid: int,
    tid: int,
) -> None:
    """Append one lane's balanced ``B``/``E`` pairs to ``events``.

    ``spans`` are the plain dicts of ``SpanTracer.export_spans`` (with
    timestamps already in the exporting clock domain relative to ``t0``);
    emission is depth-first tree order, which guarantees every ``B`` is
    closed by its own ``E`` in stack order on the (pid, tid) track.
    """
    children: Dict[int, List[dict]] = {}
    roots: List[dict] = []
    for span in spans:
        if span["parent"] < 0:
            roots.append(span)
        else:
            children.setdefault(span["parent"], []).append(span)

    def emit(span: dict) -> None:
        begin = {
            "name": span["name"],
            "cat": span["cat"],
            "ph": "B",
            "ts": round((span["start"] - t0) * 1e6, 3),
            "pid": pid,
            "tid": tid,
        }
        args = dict(span.get("args") or {})
        if span.get("site") is not None:
            args["site"] = span["site"]
        if args:
            begin["args"] = args
        events.append(begin)
        for child in children.get(span["index"], ()):
            emit(child)
        events.append({
            "name": span["name"],
            "cat": span["cat"],
            "ph": "E",
            "ts": round((span["end"] - t0) * 1e6, 3),
            "pid": pid,
            "tid": tid,
        })

    for root in roots:
        emit(root)


def chrome_trace_events(
    tracer: SpanTracer,
    process_name: str = "repro-jedd",
    metrics: Optional[Dict[str, float]] = None,
    lanes: Optional[Sequence[dict]] = None,
) -> List[dict]:
    """Serialise a tracer's span tree as trace-event records.

    Events are emitted in depth-first tree order (each span's ``B``,
    then its children, then its ``E``), which is exactly the order a
    single-threaded run produced them in and guarantees balanced pairs.

    ``lanes`` adds extra (pid, tid) tracks for spans recorded in other
    processes: each entry is ``{"name", "pid", "tid", "spans"}`` (plus
    optional ``"dropped"``), with span dicts whose timestamps have
    already been aligned into this tracer's clock domain.  Every lane
    gets its own ``process_name``/``thread_name`` metadata events so
    Perfetto shows one named track per worker.
    """
    tracer.finish()
    events: List[dict] = [
        {"ph": "M", "name": "process_name", "pid": _PID, "tid": _TID,
         "args": {"name": process_name}},
        {"ph": "M", "name": "thread_name", "pid": _PID, "tid": _TID,
         "args": {"name": "coordinator"}},
    ]
    t0 = tracer.t0
    _emit_lane(events, tracer.export_spans(), t0, _PID, _TID)

    for lane in lanes or ():
        pid = int(lane.get("pid", _PID))
        tid = int(lane.get("tid", _TID))
        name = str(lane.get("name", f"worker pid={pid}"))
        events.append({"ph": "M", "name": "process_name", "pid": pid,
                       "tid": tid, "args": {"name": name}})
        events.append({"ph": "M", "name": "thread_name", "pid": pid,
                       "tid": tid, "args": {"name": name}})
        _emit_lane(events, lane.get("spans") or (), t0, pid, tid)

    if metrics:
        # A single instant event carrying the final metrics snapshot so
        # the numbers travel with the trace file.
        events.append({
            "name": "metrics.snapshot",
            "cat": "metrics",
            "ph": "i",
            "s": "g",
            "ts": round((perf_now() - t0) * 1e6, 3),
            "pid": _PID,
            "tid": _TID,
            "args": {"metrics": metrics},
        })
    return events


def perf_now() -> float:
    from time import perf_counter

    return perf_counter()


def write_chrome_trace(
    path: str,
    tracer: SpanTracer,
    process_name: str = "repro-jedd",
    metrics: Optional[Dict[str, float]] = None,
    lanes: Optional[Sequence[dict]] = None,
) -> int:
    """Write the trace JSON; returns the number of events written."""
    events = chrome_trace_events(tracer, process_name, metrics, lanes)
    worker_dropped = sum(int(l.get("dropped", 0)) for l in lanes or ())
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.telemetry",
            "droppedSpans": tracer.dropped,
            "workerLanes": len(lanes or ()),
            "workerDroppedSpans": worker_dropped,
        },
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=None, separators=(",", ":"))
    return len(events)


def validate_chrome_trace(doc: object) -> List[str]:
    """Check a parsed trace document; returns a list of problems (empty
    when valid).

    Validates: top-level shape, per-event required keys, and — the part
    CI cares about — that every ``B`` has a matching ``E`` with the same
    name in proper stack order on its (pid, tid) track.
    """
    problems: List[str] = []
    if isinstance(doc, dict):
        events = doc.get("traceEvents")
        if not isinstance(events, list):
            return ["top-level object has no 'traceEvents' list"]
    elif isinstance(doc, list):
        events = doc
    else:
        return ["trace must be a JSON array or an object with 'traceEvents'"]

    stacks: Dict[tuple, List[dict]] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        if ph is None:
            problems.append(f"event {i}: missing 'ph'")
            continue
        if "name" not in ev:
            problems.append(f"event {i}: missing 'name'")
            continue
        if ph in ("B", "E", "X", "i", "I", "C"):
            if not isinstance(ev.get("ts"), (int, float)):
                problems.append(f"event {i} ({ev['name']}): missing numeric 'ts'")
                continue
        track = (ev.get("pid"), ev.get("tid"))
        if ph == "B":
            stacks.setdefault(track, []).append(ev)
        elif ph == "E":
            stack = stacks.setdefault(track, [])
            if not stack:
                problems.append(f"event {i}: 'E' for {ev['name']!r} with empty stack")
                continue
            top = stack.pop()
            if top.get("name") != ev.get("name"):
                problems.append(
                    f"event {i}: 'E' for {ev['name']!r} does not match open 'B' {top.get('name')!r}"
                )
            if isinstance(top.get("ts"), (int, float)) and ev["ts"] < top["ts"]:
                problems.append(f"event {i}: 'E' for {ev['name']!r} ends before it begins")
    for track, stack in stacks.items():
        for ev in stack:
            problems.append(f"track {track}: unclosed 'B' for {ev.get('name')!r}")
    return problems


def text_report(
    metrics: Dict[str, float],
    tracer: Optional[SpanTracer] = None,
    max_span_lines: int = 60,
) -> str:
    """Plain-text report: metrics table plus the heaviest span subtrees."""
    lines: List[str] = ["== metrics =="]
    width = max((len(name) for name in metrics), default=0)
    for name in sorted(metrics):
        value = metrics[name]
        if isinstance(value, float) and not value.is_integer():
            rendered = f"{value:.6f}"
        else:
            rendered = f"{int(value)}"
        lines.append(f"{name:<{width}}  {rendered}")

    if tracer is not None and tracer.spans:
        tracer.finish()
        lines.append("")
        lines.append("== spans ==")
        roots = [s for s in tracer.spans if s.parent < 0]
        roots.sort(key=lambda s: s.seconds, reverse=True)
        children: Dict[int, List[Span]] = {}
        for span in tracer.spans:
            if span.parent >= 0:
                children.setdefault(span.parent, []).append(span)
        budget = [max_span_lines]

        def walk(span: Span, depth: int) -> None:
            if budget[0] <= 0:
                return
            budget[0] -= 1
            site = f"  @{span.site}" if span.site else ""
            lines.append(
                f"{'  ' * depth}{span.name} [{span.cat}] {span.seconds * 1e3:.3f}ms{site}"
            )
            kids = sorted(children.get(span.index, ()), key=lambda s: s.seconds, reverse=True)
            for kid in kids:
                walk(kid, depth + 1)

        for root in roots:
            walk(root, 0)
        if budget[0] <= 0:
            lines.append(f"... ({len(tracer.spans)} spans total, output truncated)")
        if tracer.dropped:
            lines.append(f"!! {tracer.dropped} spans dropped (max_spans={tracer.max_spans})")
    return "\n".join(lines)


def _main(argv: Sequence[str]) -> int:
    """``python -m repro.telemetry.export trace.json [...]`` — validate
    Chrome-trace files, printing problems and exiting non-zero on any."""
    if not argv:
        print("usage: python -m repro.telemetry.export TRACE.json [TRACE.json ...]")
        return 2
    status = 0
    for path in argv:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError) as err:
            print(f"{path}: unreadable: {err}")
            status = 1
            continue
        problems = validate_chrome_trace(doc)
        if problems:
            status = 1
            print(f"{path}: INVALID ({len(problems)} problems)")
            for problem in problems[:20]:
                print(f"  - {problem}")
        else:
            events = doc["traceEvents"] if isinstance(doc, dict) else doc
            n_b = sum(1 for e in events if e.get("ph") == "B")
            print(f"{path}: OK ({len(events)} events, {n_b} balanced B/E pairs)")
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via CI step
    import sys

    raise SystemExit(_main(sys.argv[1:]))
