"""Prometheus text exposition (format 0.0.4) for the metrics registry.

``exposition_text`` renders a :class:`MetricsRegistry` the way a
``/metrics`` endpoint must: one ``# HELP``/``# TYPE`` header per metric
family, counters suffixed ``_total``, histograms as cumulative
``_bucket{le="..."}`` series plus ``_sum``/``_count``.  Internal metric
names use dots (``bdd.apply_cache.hits``); Prometheus names may not, so
dots — and anything else outside ``[a-zA-Z0-9_:]`` — become underscores
(``bdd_apply_cache_hits_total``).

``check_exposition`` is the line-format validator CI runs against the
output of ``jeddc --metrics``; it is also exposed as
``python -m repro.telemetry.exposition <file>``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["exposition_text", "check_exposition", "sanitize_name"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_BAD = re.compile(r"[^a-zA-Z0-9_]")

#: One sample line: name, optional {labels}, value, optional timestamp.
_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"          # metric name
    r"(\{[^{}]*\})?"                       # optional label set
    r" [^ ]+"                              # value
    r"( [0-9-]+)?$"                        # optional timestamp (ms)
)


def sanitize_name(name: str) -> str:
    """Map an internal dotted metric name onto the Prometheus charset."""
    out = _BAD_CHARS.sub("_", name)
    if not out or not (out[0].isalpha() or out[0] in "_:"):
        out = "_" + out
    return out


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _render_labels(pairs: Sequence[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    parts = [
        f'{_LABEL_BAD.sub("_", k)}="{_escape_label_value(str(v))}"'
        for k, v in pairs
    ]
    return "{" + ",".join(parts) + "}"


def _render_value(value: float) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        if value in (float("inf"), float("-inf")):
            return "+Inf" if value > 0 else "-Inf"
        if value.is_integer():
            return str(int(value))
        return repr(value)
    return str(value)


def exposition_text(
    registry: MetricsRegistry,
    extra_gauges: Optional[Dict[str, float]] = None,
) -> str:
    """Render the registry (plus ad-hoc ``extra_gauges``) as exposition
    text.  Series are grouped into families (same sanitized name) so each
    family gets exactly one HELP/TYPE header, as the format requires."""
    families: Dict[str, dict] = {}

    def family(name: str, kind: str, help_text: str) -> dict:
        fam = families.get(name)
        if fam is None:
            fam = families[name] = {
                "type": kind, "help": help_text, "samples": [],
            }
        return fam

    for series in registry.series():
        labels = list(series.labels)
        if isinstance(series, Counter):
            name = sanitize_name(series.name)
            if not name.endswith("_total"):
                name += "_total"
            fam = family(name, "counter", f"repro counter {series.name}")
            fam["samples"].append((name, labels, series.value))
        elif isinstance(series, Gauge):
            name = sanitize_name(series.name)
            fam = family(name, "gauge", f"repro gauge {series.name}")
            fam["samples"].append((name, labels, series.value))
        elif isinstance(series, Histogram):
            name = sanitize_name(series.name)
            fam = family(name, "histogram", f"repro histogram {series.name}")
            cumulative = 0
            for bound, count in zip(series.bounds, series.buckets):
                cumulative += count
                fam["samples"].append((
                    f"{name}_bucket",
                    labels + [("le", _render_value(float(bound)))],
                    cumulative,
                ))
            fam["samples"].append((
                f"{name}_bucket", labels + [("le", "+Inf")], series.count,
            ))
            fam["samples"].append((f"{name}_sum", labels, series.total))
            fam["samples"].append((f"{name}_count", labels, series.count))

    for raw_name, value in sorted((extra_gauges or {}).items()):
        name = sanitize_name(raw_name)
        fam = family(name, "gauge", f"repro gauge {raw_name}")
        fam["samples"].append((name, [], value))

    lines: List[str] = []
    for name in sorted(families):
        fam = families[name]
        lines.append(f"# HELP {name} {fam['help']}")
        lines.append(f"# TYPE {name} {fam['type']}")
        for sample_name, labels, value in fam["samples"]:
            lines.append(
                f"{sample_name}{_render_labels(labels)} {_render_value(value)}"
            )
    return "\n".join(lines) + "\n" if lines else ""


def check_exposition(text: str) -> List[str]:
    """Line-format check of exposition text; returns problems (empty when
    valid).  Validates comment syntax, metric/label name charsets, that
    every sample belongs to a declared family (TYPE before samples), and
    that histogram families carry ``_bucket``/``_sum``/``_count``."""
    problems: List[str] = []
    typed: Dict[str, str] = {}
    seen_samples: Dict[str, List[str]] = {}
    for i, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                problems.append(f"line {i}: malformed comment: {line!r}")
                continue
            if not _NAME_OK.match(parts[2]):
                problems.append(f"line {i}: bad metric name {parts[2]!r}")
            if parts[1] == "TYPE":
                if len(parts) < 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"
                ):
                    problems.append(f"line {i}: bad TYPE: {line!r}")
                elif parts[2] in typed:
                    problems.append(
                        f"line {i}: duplicate TYPE for {parts[2]!r}"
                    )
                else:
                    typed[parts[2]] = parts[3]
            continue
        if not _SAMPLE_LINE.match(line):
            problems.append(f"line {i}: malformed sample line: {line!r}")
            continue
        name = re.split(r"[{ ]", line, maxsplit=1)[0]
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            stripped = name[: -len(suffix)] if name.endswith(suffix) else None
            if stripped and typed.get(stripped) == "histogram":
                base = stripped
                break
        if base not in typed:
            problems.append(
                f"line {i}: sample {name!r} has no preceding # TYPE"
            )
            continue
        seen_samples.setdefault(base, []).append(name)
        brace = line.find("{")
        if brace >= 0:
            labels = line[brace + 1: line.find("}")]
            for part in filter(None, labels.split(",")):
                if "=" not in part:
                    problems.append(f"line {i}: malformed label {part!r}")
                    continue
                lname, lval = part.split("=", 1)
                if not _LABEL_OK.match(lname):
                    problems.append(f"line {i}: bad label name {lname!r}")
                if not (lval.startswith('"') and lval.endswith('"')):
                    problems.append(f"line {i}: unquoted label value {lval!r}")
    for name, kind in typed.items():
        names = seen_samples.get(name, [])
        if not names:
            problems.append(f"family {name!r}: TYPE but no samples")
            continue
        if kind == "histogram":
            for suffix in ("_bucket", "_sum", "_count"):
                if not any(n == name + suffix for n in names):
                    problems.append(
                        f"histogram {name!r}: missing {name + suffix!r}"
                    )
        if kind == "counter" and not name.endswith("_total"):
            problems.append(f"counter {name!r}: missing '_total' suffix")
    return problems


def _main(argv: Sequence[str]) -> int:
    """``python -m repro.telemetry.exposition FILE [...]`` — validate
    exposition files, printing problems and exiting non-zero on any."""
    if not argv:
        print("usage: python -m repro.telemetry.exposition METRICS.prom [...]")
        return 2
    status = 0
    for path in argv:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError as err:
            print(f"{path}: unreadable: {err}")
            status = 1
            continue
        problems = check_exposition(text)
        if problems:
            status = 1
            print(f"{path}: INVALID ({len(problems)} problems)")
            for problem in problems[:20]:
                print(f"  - {problem}")
        else:
            n = sum(
                1 for ln in text.splitlines() if ln and not ln.startswith("#")
            )
            print(f"{path}: OK ({n} samples)")
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via CI step
    import sys

    raise SystemExit(_main(sys.argv[1:]))
