"""ExecutionPolicy: one value describing *how* a solve should run.

The solve entry points had grown a parallel set of keyword arguments —
``engine=``, ``workers=``, ``task_timeout=``, ``fault_injection=``,
``optimize=``, ``collect_plans=`` — repeated on
:class:`~repro.relations.fixpoint.FixpointEngine` and all four
analyses, and threaded through the demo's command line.  This module
replaces the sprawl with a single frozen dataclass accepted
everywhere::

    from repro.relations import ExecutionPolicy, FixpointEngine

    policy = ExecutionPolicy(engine="parallel", workers=4)
    eng = FixpointEngine(universe, policy)
    pta = PointsTo(au, policy=policy)

Every accepting call site also takes a plain engine name as shorthand
(``policy="naive"`` means ``ExecutionPolicy(engine="naive")``).  The
old keyword arguments still work but emit a :class:`DeprecationWarning`
and will be removed; see the migration table in ``docs/FIXPOINT.md``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, fields, replace
from typing import Mapping, Optional, Union

__all__ = ["ExecutionPolicy", "POLICY_ENGINES"]

#: Engine names an :class:`ExecutionPolicy` accepts.  ``"naive"`` is
#: only meaningful to the analyses (their original whole-relation
#: loops, kept for differential testing); the fixpoint engine itself
#: rejects it.
POLICY_ENGINES = ("seminaive", "parallel", "naive")


@dataclass(frozen=True)
class ExecutionPolicy:
    """How rule bodies are evaluated: engine, parallelism, planning.

    Fields map one-to-one onto the keyword arguments they replace:

    - ``engine`` — ``"seminaive"`` (default), ``"parallel"``, or (for
      the analyses only) ``"naive"``;
    - ``workers`` — worker-process count for the parallel engine;
    - ``task_timeout`` — seconds without progress before the parallel
      coordinator declares a worker hung;
    - ``fault_injection`` — test hook shipped to parallel workers;
    - ``optimize`` — let the query planner reorder conjuncts (pass
      False for the source-order baseline);
    - ``collect_plans`` — record one ``PlanReport`` per executed rule
      body.

    Instances are frozen (hashable, safely shared across engines and
    sessions); derive variants with :meth:`with_options`.
    """

    engine: str = "seminaive"
    workers: Optional[int] = None
    task_timeout: Optional[float] = None
    fault_injection: Optional[Mapping] = field(default=None, hash=False)
    optimize: bool = True
    collect_plans: bool = False

    def __post_init__(self) -> None:
        from repro.relations.domain import JeddError

        if self.engine not in POLICY_ENGINES:
            raise JeddError(
                f"unknown engine {self.engine!r} "
                f"(expected one of {', '.join(POLICY_ENGINES)})"
            )
        if self.workers is not None and self.workers < 1:
            raise JeddError("workers must be a positive integer")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def of(
        cls, value: Union["ExecutionPolicy", str, None]
    ) -> "ExecutionPolicy":
        """Coerce ``value`` to a policy: an existing policy passes
        through, a string is an engine-name shorthand, None is the
        default policy."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(engine=value)
        from repro.relations.domain import JeddError

        raise JeddError(
            f"cannot interpret {value!r} as an ExecutionPolicy "
            "(expected a policy, an engine name, or None)"
        )

    def with_options(self, **changes: object) -> "ExecutionPolicy":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    @classmethod
    def from_deprecated(
        cls,
        policy: Union["ExecutionPolicy", str, None],
        owner: str,
        **legacy: object,
    ) -> "ExecutionPolicy":
        """Fold deprecated per-kwarg spellings into one policy.

        ``legacy`` maps field name -> the value the caller passed (None
        meaning "not given").  Any non-None legacy value emits a
        :class:`DeprecationWarning` naming ``owner`` and overrides the
        corresponding policy field — the old kwargs win so existing
        call sites keep their exact behaviour during migration.
        """
        supplied = {k: v for k, v in legacy.items() if v is not None}
        if supplied:
            names = ", ".join(f"{k}=" for k in sorted(supplied))
            warnings.warn(
                f"{owner}: the {names} keyword argument(s) are "
                "deprecated; pass an ExecutionPolicy instead "
                "(see docs/FIXPOINT.md)",
                DeprecationWarning,
                stacklevel=3,
            )
        base = cls.of(policy)
        valid = {f.name for f in fields(cls)}
        unknown = set(supplied) - valid
        if unknown:
            from repro.relations.domain import JeddError

            raise JeddError(
                f"{owner}: unknown execution options {sorted(unknown)}"
            )
        return replace(base, **supplied) if supplied else base

    def __str__(self) -> str:
        parts = [self.engine]
        if self.workers is not None:
            parts.append(f"x{self.workers}")
        if not self.optimize:
            parts.append("unoptimized")
        return " ".join(parts)
