"""Semi-naive fixed-point evaluation of relational rules (section 5).

The paper's proof-of-concept analyses are mutually recursive relational
equations solved to a fixed point.  Instead of the naive ``while
changed`` loops that re-join the *entire* relation every iteration,
this module provides a small saturation engine: an analysis declares
rules over relations, e.g. ::

    eng = FixpointEngine(universe)
    eng.fact("new", new_rel)
    eng.fact("assign", assign_rel)       # assign(dst, src)
    eng.relation("pt", new_rel)          # seeded with the base case
    eng.rule("pt", ("v", "o"), [("assign", ("v", "w")),
                                ("pt", ("w", "o"))])
    pt = eng.solve()["pt"]

and the engine runs them with *semi-naive* (delta) evaluation: each
iteration re-evaluates a rule once per recursive body atom, with that
occurrence bound to the tuples discovered in the previous round (the
delta) and the remaining occurrences bound to the current full
relation.  Anything new is unioned in and becomes the next delta; the
engine terminates when every delta is empty.  Because every combination
of tuples with at least one delta tuple is covered by some occurrence
binding, this derives exactly the tuples the naive loop would — the
differential test suite checks that tuple-for-tuple on both backends.

Rule bodies are lowered to the query planner
(:mod:`repro.relations.ir`): each rule becomes one planned n-ary
product — conjuncts reordered by estimated cost, the delta atom
anchored first, dead variables quantified out at the earliest step —
executed through :meth:`Relation.compose_pipeline`, so on the BDD
backend each planned step is still one fused ``and_exist`` kernel call
over the (small) delta instead of a join + projection over the full
relation.  Plans are cached per (rule shape, delta binding, universe
plan generation); pass ``optimize=False`` to keep the source's
left-to-right conjunct order (the baseline the differential suite
compares against).

Rule syntax
-----------

A rule is ``head ← body``: the head names a recursive relation with a
variable for each attribute, the body is a list of atoms.  Atom
variables are given positionally (``("pt", ("w", "o"))``) or by
attribute name (``("pt", {"var": "w", "obj": "o"})`` — useful when a
relation's attribute order is not fixed).  Repeating a variable across
atoms expresses a join.  A ``"!"`` prefix negates an atom
(``("!declared", ("t", "s"))``): negation is stratified and only
allowed against static facts, and every variable of a negated atom must
be bound by a positive atom.  Monotonicity is structural — rules can
only add tuples — so termination follows from the finite domains.

Per-relation *filters* (:meth:`FixpointEngine.filter`) intersect every
round of derived tuples with a fixed relation, e.g. the declared-type
filter of the points-to analysis.

Telemetry: when a telemetry session is active, the engine emits
``fixpoint.solve`` / ``fixpoint.iteration`` / ``fixpoint.rule`` spans
(category ``"fixpoint"``) carrying the iteration number, per-relation
delta sizes, and — through the tracer's kernel-counter delta source —
the apply-cache and node-creation costs of each rule body.

Incremental maintenance
-----------------------

After an initial :meth:`FixpointEngine.solve`, the engine is a
*standing query*: :meth:`~FixpointEngine.insert` and
:meth:`~FixpointEngine.retract` update the base facts (or seeds) and
maintain every derived relation by DRed-style delete/rederive:

1. **over-delete** — rule bodies are re-evaluated with one occurrence
   bound to the retracted tuples (for facts appearing negated, to the
   *inserted* tuples that newly block a derivation); anything a rule
   could have derived through a lost tuple becomes a deletion
   candidate, propagated per-rule-delta through the recursive relations
   against the pre-update solution;
2. **rederive** — each candidate that still has a derivation from the
   surviving tuples (found by planning the rule body with the deleted
   set as an extra, delta-anchored conjunct over the head variables) is
   put back;
3. **grow** — insertions (and rederivations, and derivations newly
   unblocked by retractions from negated facts) seed the ordinary
   semi-naive loop, which runs to the new fixed point.

The result is bit-identical to a from-scratch :meth:`solve` over the
updated facts, at a cost proportional to the changed tuples rather
than the whole universe — the differential suite asserts the equality,
``benchmarks/test_incremental.py`` the >=10x kernel-work reduction.
Update phases emit ``incremental.update`` / ``incremental.overdelete``
/ ``incremental.rederive`` / ``incremental.grow`` spans (category
``"incremental"``), and the per-update counters land in the telemetry
gauges as ``incremental.*``.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro import telemetry as _telemetry
from repro.relations.domain import JeddError, Universe
from repro.relations.policy import ExecutionPolicy
from repro.relations.ir.execute import (
    PlanReport,
    _schema_sig,
    default_weight,
    run_product_plan,
)
from repro.relations.ir.planner import (
    Estimate,
    Planner,
    RulePlan,
    plan_rule,
)
from repro.relations.relation import Relation

__all__ = [
    "Atom",
    "ExecutionPolicy",
    "Rule",
    "FixpointEngine",
    "eval_rule_body",
    "execute_rule_plan",
    "rule_shape",
]


class Atom:
    """One body or head literal: a relation name with rule variables."""

    __slots__ = ("name", "vars", "negated")

    def __init__(
        self, name: str, vars: Sequence[str], negated: bool = False
    ) -> None:
        self.name = name
        self.vars = tuple(vars)
        self.negated = negated
        if len(set(self.vars)) != len(self.vars):
            raise JeddError(
                f"atom {self!r}: repeated variable (use copy() to "
                "express diagonals)"
            )

    def __repr__(self) -> str:
        bang = "!" if self.negated else ""
        return f"{bang}{self.name}({', '.join(self.vars)})"


class Rule:
    """``head ← positive atoms ∧ negated atoms``."""

    __slots__ = ("head", "positive", "negated", "recursive_positions")

    def __init__(
        self,
        head: Atom,
        positive: Sequence[Atom],
        negated: Sequence[Atom],
        recursive_positions: Sequence[int],
    ) -> None:
        self.head = head
        self.positive = tuple(positive)
        self.negated = tuple(negated)
        #: Indices into ``positive`` of atoms over recursive relations;
        #: the semi-naive loop evaluates the rule once per entry.
        self.recursive_positions = tuple(recursive_positions)

    @property
    def label(self) -> str:
        body = ", ".join(repr(a) for a in self.positive + self.negated)
        return f"{self.head!r} :- {body}"

    def __repr__(self) -> str:
        return f"Rule({self.label})"


def rule_shape(rule: Rule, head_names: Sequence[str]) -> tuple:
    """The structural key a rule body plans under: everything the plan
    depends on except the estimates — positive atoms (relation name and
    variables, in source order), head variables and declared names, and
    the negated atoms' variables."""
    return (
        tuple((a.name, a.vars) for a in rule.positive),
        rule.head.vars,
        tuple(head_names),
        _neg_vars(rule),
    )


def _neg_vars(rule: Rule) -> Tuple[str, ...]:
    seen = set()
    for atom in rule.negated:
        seen.update(atom.vars)
    return tuple(sorted(seen))


def _run_rule_plan(
    rule: Rule,
    plan: RulePlan,
    rels: Sequence[Relation],
    neg_value: Callable[[Atom], Relation],
    label: str = "",
    collect: Optional[List[PlanReport]] = None,
    memo: Optional[dict] = None,
) -> Relation:
    """Execute a planned rule body against its bound atom relations.

    ``memo`` (when given) is a common-subexpression cache shared across
    rule bodies: the planned product is keyed by (plan, the input
    relations' diagram nodes and physical-domain placements), so two
    rules — or two delta bindings — computing the same product over the
    same inputs evaluate it once.
    """
    mkey = None
    cur = None
    if memo is not None:
        mkey = (
            plan.product,
            tuple((r.node, _schema_sig(r)) for r in rels),
        )
        cur = memo.get(mkey)
    if cur is None:
        cur = run_product_plan(
            rels,
            plan.product,
            label=label,
            part_labels=[repr(a) for a in rule.positive],
            collect=collect,
        )
        if memo is not None:
            memo[mkey] = cur
    for atom in rule.negated:
        neg = neg_value(atom)
        cur = cur - cur.join(neg, list(atom.vars), list(atom.vars))
    if plan.neg_drop:
        cur = cur.project_away(*plan.neg_drop)
    mapping = dict(plan.rename)
    return cur.rename(mapping) if mapping else cur


def execute_rule_plan(
    rule: Rule,
    plan: RulePlan,
    atom_value: Callable[[Atom, bool], Relation],
    neg_value: Callable[[Atom], Relation],
    label: str = "",
    collect: Optional[List[PlanReport]] = None,
    memo: Optional[dict] = None,
) -> Relation:
    """Evaluate one rule body under a precomputed :class:`RulePlan`; the
    shared core of the serial engine and the parallel workers
    (:mod:`repro.relations.parallel`), which receive their plans over
    the wire instead of re-deriving them.

    ``atom_value(atom, use_delta)`` supplies each positive atom's
    relation renamed to the atom's rule variables (the atom at
    ``plan.delta_idx`` bound to its delta), ``neg_value(atom)`` likewise
    for negated atoms.
    """
    rels = [
        atom_value(atom, plan.delta_idx == i)
        for i, atom in enumerate(rule.positive)
    ]
    return _run_rule_plan(
        rule, plan, rels, neg_value,
        label=label, collect=collect, memo=memo,
    )


def eval_rule_body(
    rule: Rule,
    delta_idx: Optional[int],
    atom_value: Callable[[Atom, bool], Relation],
    neg_value: Callable[[Atom], Relation],
    head_names: Sequence[str],
    planner: Optional[Planner] = None,
    label: str = "",
    collect: Optional[List[PlanReport]] = None,
    memo: Optional[dict] = None,
) -> Relation:
    """Plan and evaluate one rule body in a single call.

    Positive atom ``delta_idx`` (if any) is bound to its delta and the
    others to the current full values; the result is renamed to
    ``head_names`` (the head relation's declared attribute order).
    The body is lowered through the query planner
    (:func:`repro.relations.ir.plan_rule`); pass a shared
    :class:`~repro.relations.ir.Planner` to cache plans across calls,
    or none to plan from scratch each time.
    """
    rels = [
        atom_value(atom, delta_idx == i)
        for i, atom in enumerate(rule.positive)
    ]
    universe = rels[0].universe
    weight = default_weight(universe)
    atom_vars = [a.vars for a in rule.positive]

    def estimates() -> List[Estimate]:
        return [
            Estimate(float(r.size()), float(r.node_count())) for r in rels
        ]

    if planner is not None:
        plan = planner.rule_plan(
            rule_shape(rule, head_names),
            universe.plan_generation,
            atom_vars,
            rule.head.vars,
            _neg_vars(rule),
            head_names,
            estimates,
            weight,
            delta_idx,
        )
    else:
        plan = plan_rule(
            atom_vars,
            rule.head.vars,
            _neg_vars(rule),
            head_names,
            estimates(),
            weight,
            delta_idx,
        )
    return _run_rule_plan(
        rule, plan, rels, neg_value,
        label=label or rule.label, collect=collect, memo=memo,
    )


class FixpointEngine:
    """Declare rules over relations; solve them semi-naively.

    ``policy`` (an :class:`~repro.relations.policy.ExecutionPolicy`, or
    an engine-name shorthand string) selects how each semi-naive round
    evaluates its rule bodies: ``"seminaive"`` (default) runs them one
    after another in this process; ``"parallel"`` dispatches them to
    ``policy.workers`` worker processes
    (:mod:`repro.relations.parallel`), each with its own diagram
    manager, falling back to the serial path if the pool fails.  Both
    derive the identical fixed point.  ``policy.task_timeout`` bounds
    how long the coordinator waits without progress before declaring a
    worker hung; ``policy.fault_injection`` is the test hook shipped to
    the workers (see ``repro.relations.parallel``).

    ``policy.optimize=False`` turns the query planner's conjunct
    reordering and early quantification off — rule bodies evaluate
    strictly left to right with all projection at the end, the baseline
    the differential suite compares the planner against.
    ``policy.collect_plans=True`` records one :class:`PlanReport` per
    executed rule body on :attr:`plan_reports` (estimated and actual
    per-step costs — the shell's ``explain`` output).

    The individual keyword arguments the policy replaced (``engine=``,
    ``workers=``, ``task_timeout=``, ``fault_injection=``,
    ``optimize=``, ``collect_plans=``) still work but are deprecated.
    """

    def __init__(
        self,
        universe: Universe,
        policy: Optional["ExecutionPolicy | str"] = None,
        *,
        engine: Optional[str] = None,
        workers: Optional[int] = None,
        task_timeout: Optional[float] = None,
        fault_injection: Optional[dict] = None,
        optimize: Optional[bool] = None,
        collect_plans: Optional[bool] = None,
    ) -> None:
        policy = ExecutionPolicy.from_deprecated(
            policy,
            "FixpointEngine",
            engine=engine,
            workers=workers,
            task_timeout=task_timeout,
            fault_injection=fault_injection,
            optimize=optimize,
            collect_plans=collect_plans,
        )
        if policy.engine not in ("seminaive", "parallel"):
            raise JeddError(
                f"unknown fixpoint engine {policy.engine!r} "
                "(expected 'seminaive' or 'parallel')"
            )
        self.universe = universe
        #: The resolved execution policy this engine runs under.
        self.policy = policy
        self.engine = policy.engine
        self.workers = policy.workers
        self.task_timeout = policy.task_timeout
        self.fault_injection = (
            dict(policy.fault_injection)
            if policy.fault_injection is not None else None
        )
        self.optimize = policy.optimize
        self._planner = Planner(optimize=policy.optimize)
        self._weight = default_weight(universe)
        self._memo: Optional[dict] = None
        #: Executed-plan reports of the last :meth:`solve` (only
        #: recorded when ``collect_plans`` is set).
        self.collect_plans = policy.collect_plans
        self.plan_reports: List[PlanReport] = []
        self._facts: Dict[str, Relation] = {}
        self._seeds: Dict[str, Relation] = {}
        self._filters: Dict[str, Relation] = {}
        self._rules: List[Rule] = []
        self._order: List[str] = []  # recursive relations, declaration order
        self._full: Dict[str, Relation] = {}
        self._delta: Dict[str, Relation] = {}
        self._executor = None
        self._solved = False
        #: Number of semi-naive iterations of the last :meth:`solve`.
        self.iterations = 0
        #: Number of rule-body evaluations of the last :meth:`solve`.
        self.rule_evaluations = 0
        #: Executor counter snapshot of the last parallel :meth:`solve`
        #: (bytes shipped, retries, restarts, fallbacks...), else None.
        self.parallel_stats: Optional[dict] = None
        #: Counter snapshot of the last :meth:`update` (deleted /
        #: rederived / inserted tuple counts, phase iterations, kernel
        #: work), else None.
        self.last_update_stats: Optional[dict] = None

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    def _check_rel(self, name: str, rel: Relation) -> Relation:
        if not isinstance(rel, Relation):
            raise TypeError(f"{name!r}: not a relation: {rel!r}")
        if rel.universe is not self.universe:
            raise JeddError(
                f"{name!r}: relation belongs to a different universe"
            )
        return rel

    def fact(self, name: str, rel: Relation) -> None:
        """Register a static relation the rules may read."""
        if name in self._facts or name in self._seeds:
            raise JeddError(f"relation {name!r} already registered")
        self._facts[name] = self._check_rel(name, rel)

    def relation(self, name: str, seed: Relation) -> None:
        """Register a recursive relation, seeded with ``seed``.

        The seed is the base case; rules may grow the relation from
        there.  The seed also fixes the relation's schema (attribute
        order and physical domains) for the solution.
        """
        if name in self._facts or name in self._seeds:
            raise JeddError(f"relation {name!r} already registered")
        self._seeds[name] = self._check_rel(name, seed)
        self._order.append(name)

    def filter(self, name: str, rel: Relation) -> None:
        """Intersect every round of tuples derived for ``name`` with
        ``rel`` (e.g. the paper's declared-type filter)."""
        if name not in self._seeds:
            raise JeddError(f"filter: no recursive relation {name!r}")
        self._filters[name] = self._check_rel(name, rel)

    def _schema_of(self, name: str) -> "Relation":
        # Explicit None checks: an *empty* seed relation is falsy.
        rel = self._seeds.get(name)
        if rel is None:
            rel = self._facts.get(name)
        if rel is None:
            raise JeddError(
                f"unknown relation {name!r} (register relations and "
                "facts before the rules that use them)"
            )
        return rel

    def _parse_atom(self, spec) -> Atom:
        if isinstance(spec, Atom):
            return spec
        name, vars = spec
        negated = name.startswith("!")
        if negated:
            name = name[1:]
        rel = self._schema_of(name)
        if isinstance(vars, Mapping):
            names = rel.schema.names()
            missing = set(names) ^ set(vars)
            if missing:
                raise JeddError(
                    f"atom {name!r}: variable mapping must cover exactly "
                    f"the attributes {list(names)} (mismatch: "
                    f"{sorted(missing)})"
                )
            vars = tuple(vars[n] for n in names)
        vars = tuple(vars)
        if len(vars) != len(rel.schema):
            raise JeddError(
                f"atom {name!r}: {len(vars)} variables for "
                f"{len(rel.schema)} attributes"
            )
        # Auto-declare each rule variable as an attribute over the
        # matching domain; a clash means the variable is used at two
        # incompatible positions.
        for var, (attr, _) in zip(vars, rel.schema.pairs):
            self.universe.attribute(var, attr.domain)
        return Atom(name, vars, negated)

    def rule(self, head_name: str, head_vars, body: Iterable) -> Rule:
        """Add ``head_name(head_vars) ← body`` (see the module docs)."""
        if head_name not in self._seeds:
            raise JeddError(
                f"rule head {head_name!r} is not a recursive relation"
            )
        head = self._parse_atom((head_name, head_vars))
        positive: List[Atom] = []
        negated: List[Atom] = []
        for spec in body:
            atom = self._parse_atom(spec)
            (negated if atom.negated else positive).append(atom)
        if not positive:
            raise JeddError(f"rule for {head_name!r} has no positive atom")
        bound = set()
        for atom in positive:
            bound.update(atom.vars)
        unbound = set(head.vars) - bound
        if unbound:
            raise JeddError(
                f"head variables {sorted(unbound)} not bound by any "
                "positive atom"
            )
        for atom in negated:
            if atom.name not in self._facts:
                raise JeddError(
                    f"negated atom {atom!r} must reference a static fact "
                    "(stratified negation)"
                )
            loose = set(atom.vars) - bound
            if loose:
                raise JeddError(
                    f"negated atom {atom!r}: variables {sorted(loose)} "
                    "not bound by any positive atom"
                )
        recursive_positions = [
            i for i, atom in enumerate(positive) if atom.name in self._seeds
        ]
        rule = Rule(head, positive, negated, recursive_positions)
        self._rules.append(rule)
        return rule

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def _rename_to_vars(self, rel: Relation, atom: Atom) -> Relation:
        # Positional correspondence uses the *declared* schema order
        # (the seed/fact registered for the name): derived deltas can
        # carry the same attributes in a different order.
        names = self._schema_of(atom.name).schema.names()
        mapping = {
            n: v for n, v in zip(names, atom.vars) if n != v
        }
        return rel.rename(mapping) if mapping else rel

    def _atom_value(self, atom: Atom, use_delta: bool) -> Relation:
        if atom.name in self._full:
            rel = self._delta[atom.name] if use_delta else \
                self._full[atom.name]
        else:
            rel = self._facts[atom.name]
        return self._rename_to_vars(rel, atom)

    def _neg_value(self, atom: Atom) -> Relation:
        return self._rename_to_vars(self._facts[atom.name], atom)

    def _rule_plan(
        self,
        rule: Rule,
        delta_idx: Optional[int],
        atom_value: Optional[Callable[[Atom, bool], Relation]] = None,
    ) -> RulePlan:
        """The (cached) plan for one rule body with the given delta
        binding; estimates are taken from the current delta/full/fact
        values (or the supplied ``atom_value`` binding), but only when
        the plan cache misses."""
        head_names = self._schema_of(rule.head.name).schema.names()
        value = atom_value if atom_value is not None else self._atom_value

        def estimates() -> List[Estimate]:
            return [
                Estimate(float(r.size()), float(r.node_count()))
                for r in (
                    value(atom, delta_idx == i)
                    for i, atom in enumerate(rule.positive)
                )
            ]

        return self._planner.rule_plan(
            rule_shape(rule, head_names),
            self.universe.plan_generation,
            [a.vars for a in rule.positive],
            rule.head.vars,
            _neg_vars(rule),
            head_names,
            estimates,
            self._weight,
            delta_idx,
        )

    def _eval_rule(
        self, rule: Rule, delta_idx: Optional[int]
    ) -> Relation:
        """One rule body, with positive atom ``delta_idx`` (if any)
        bound to its delta and the others to the current full values."""
        return execute_rule_plan(
            rule,
            self._rule_plan(rule, delta_idx),
            self._atom_value,
            self._neg_value,
            label=rule.label,
            collect=self.plan_reports if self.collect_plans else None,
            memo=self._memo,
        )

    def _apply_filter(self, name: str, rel: Relation) -> Relation:
        flt = self._filters.get(name)
        return rel & flt if flt is not None else rel

    def _empty_like(self, name: str) -> Relation:
        full = self._full[name]
        names = list(full.schema.names())
        return Relation.empty(
            self.universe,
            [full.schema.attribute(n) for n in names],
            [full.schema.physdom(n) for n in names],
        )

    def _rel_schema_specs(self) -> Dict[str, tuple]:
        """Every registered relation's declared schema, by name, as
        picklable ``((attr_name, physdom_name), ...)`` tuples."""
        specs: Dict[str, tuple] = {}
        for name in list(self._seeds) + list(self._facts):
            rel = self._schema_of(name)
            specs[name] = tuple(
                (attr.name, pd.name) for attr, pd in rel.schema.pairs
            )
        return specs

    def solve(self) -> Dict[str, Relation]:
        """Run the rules to the least fixed point; returns the solution
        relations keyed by name (also kept on the engine)."""
        tel = _telemetry.active()
        self.iterations = 0
        self.rule_evaluations = 0
        self.parallel_stats = None
        self.plan_reports = []
        if self.engine == "parallel":
            from repro.relations.parallel import ParallelExecutor

            self._executor = ParallelExecutor(
                self.universe,
                self._rules,
                dict(self._facts),
                list(self._order),
                self._rel_schema_specs(),
                workers=self.workers,
                task_timeout=self.task_timeout,
                fault_injection=self.fault_injection,
            )
        try:
            with tel.span(
                "fixpoint.solve",
                cat="fixpoint",
                rules=len(self._rules),
                relations=list(self._order),
                engine=self.engine,
            ):
                for name in self._order:
                    self._full[name] = self._apply_filter(
                        name, self._seeds[name]
                    )
                # Rules with no recursive body atom derive a fixed set:
                # evaluate them once, before the loop.
                static_rules = [
                    r for r in self._rules if not r.recursive_positions
                ]
                self._memo = {}
                try:
                    for rule in static_rules:
                        self.rule_evaluations += 1
                        with tel.span("fixpoint.rule", cat="fixpoint",
                                      rule=rule.label, iteration=0):
                            out = self._apply_filter(
                                rule.head.name, self._eval_rule(rule, None)
                            )
                        self._full[rule.head.name] = \
                            self._full[rule.head.name] | out
                finally:
                    self._memo = None
                for name in self._order:
                    self._delta[name] = self._full[name]
                while any(
                    not self._delta[n].is_empty() for n in self._order
                ):
                    self.iterations += 1
                    self._iterate(tel)
        finally:
            if self._executor is not None:
                self._executor.close()
                self.parallel_stats = self._executor.stats_snapshot()
                self._executor = None
                if tel.enabled:
                    tel.record_parallel(self.parallel_stats)
        self._solved = True
        return dict(self._full)

    def _evaluate_rules_serial(self, tel, it: int) -> Dict[str, Relation]:
        """One round of rule-body evaluations, in this process."""
        acc: Dict[str, Relation] = {}
        for rule in self._rules:
            for pos in rule.recursive_positions:
                delta = self._delta[rule.positive[pos].name]
                if delta.is_empty():
                    continue
                self.rule_evaluations += 1
                with tel.span(
                    "fixpoint.rule",
                    cat="fixpoint",
                    rule=rule.label,
                    delta=rule.positive[pos].name,
                    iteration=it,
                ):
                    out = self._eval_rule(rule, pos)
                prev = acc.get(rule.head.name)
                acc[rule.head.name] = (
                    out if prev is None else prev | out
                )
        return acc

    def _evaluate_rules_parallel(self, tel, it: int) -> Dict[str, Relation]:
        """One round of rule-body evaluations, on the worker pool.

        Contributions are unioned in the same deterministic order as the
        serial loop; any task the executor cannot complete it evaluates
        through the serial ``_eval_rule`` fallback, so the round always
        finishes with the same result set.
        """
        tasks: List[Tuple[int, int]] = []
        for ri, rule in enumerate(self._rules):
            for pos in rule.recursive_positions:
                if not self._delta[rule.positive[pos].name].is_empty():
                    tasks.append((ri, pos))
        # The coordinator plans; workers only execute.  Shipping the
        # plan keeps every process on the identical schedule (and saves
        # the workers the satcount estimates).
        plans = {
            (ri, pos): self._rule_plan(self._rules[ri], pos)
            for ri, pos in tasks
        }
        outs = self._executor.evaluate_round(
            tasks,
            self._delta,
            self._full,
            lambda ri, pos: self._eval_rule(self._rules[ri], pos),
            tel,
            it,
            plans=plans,
        )
        acc: Dict[str, Relation] = {}
        for (ri, _pos), out in zip(tasks, outs):
            self.rule_evaluations += 1
            head = self._rules[ri].head.name
            prev = acc.get(head)
            acc[head] = out if prev is None else prev | out
        return acc

    def _iterate(self, tel) -> None:
        it = self.iterations
        span_args = {"iteration": it}
        if tel.enabled:
            for name in self._order:
                span_args[f"delta_{name}"] = self._delta[name].size()
        with tel.span("fixpoint.iteration", cat="fixpoint", **span_args):
            # One lifetime scope per iteration: every intermediate the
            # rule bodies allocate dies here; only the new delta and
            # full relations are kept.
            with self.universe.scope() as scope:
                # The per-round CSE memo holds intermediates that die
                # with this scope; it must not outlive the round.
                self._memo = {}
                try:
                    if (
                        self._executor is not None
                        and not self._executor.broken
                    ):
                        acc = self._evaluate_rules_parallel(tel, it)
                    else:
                        acc = self._evaluate_rules_serial(tel, it)
                finally:
                    self._memo = None
                for name in self._order:
                    contrib = acc.get(name)
                    if contrib is None:
                        fresh = self._empty_like(name)
                    else:
                        contrib = self._apply_filter(name, contrib)
                        fresh = contrib - self._full[name]
                    self._delta[name] = scope.keep(fresh)
                    if not fresh.is_empty():
                        self._full[name] = scope.keep(
                            self._full[name] | fresh
                        )

    # ------------------------------------------------------------------
    # Incremental maintenance (DRed delete/rederive)
    # ------------------------------------------------------------------

    def _as_update_relation(self, name: str, value) -> Relation:
        """Coerce an update argument (a relation or an iterable of
        tuples) to a relation over ``name``'s declared schema."""
        schema_rel = self._schema_of(name)
        if isinstance(value, Relation):
            return self._check_rel(name, value)
        names = list(schema_rel.schema.names())
        pds = [schema_rel.schema.physdom(n).name for n in names]
        return Relation.from_tuples(self.universe, names, list(value), pds)

    def _edb_get(self, name: str) -> Relation:
        if name in self._seeds:
            return self._seeds[name]
        if name in self._facts:
            return self._facts[name]
        raise JeddError(f"unknown relation {name!r}")

    def _edb_set(self, name: str, rel: Relation) -> None:
        if name in self._seeds:
            self._seeds[name] = rel
        else:
            self._facts[name] = rel

    def _bound_eval(
        self,
        rule: Rule,
        idx: int,
        delta_rel: Relation,
        fulls: Mapping[str, Relation],
        facts: Mapping[str, Relation],
        label: str = "",
    ) -> Relation:
        """One rule body with positive occurrence ``idx`` bound to
        ``delta_rel`` and every other atom bound through the given
        full/fact maps (negated atoms read ``facts`` too) — the shared
        evaluator of the over-delete, rederive, and grow phases, which
        differ only in which snapshot of the solution they bind."""

        def atom_value(atom: Atom, use_delta: bool) -> Relation:
            if use_delta:
                return self._rename_to_vars(delta_rel, atom)
            if atom.name in self._seeds:
                rel = fulls[atom.name]
            else:
                rel = facts[atom.name]
            return self._rename_to_vars(rel, atom)

        def neg_value(atom: Atom) -> Relation:
            return self._rename_to_vars(facts[atom.name], atom)

        self.rule_evaluations += 1
        return execute_rule_plan(
            rule,
            self._rule_plan(rule, idx, atom_value),
            atom_value,
            neg_value,
            label=label or rule.label,
            collect=self.plan_reports if self.collect_plans else None,
            memo=self._memo,
        )

    def _neg_trigger_eval(
        self,
        rule: Rule,
        neg_atom: Atom,
        delta_rel: Relation,
        fulls: Mapping[str, Relation],
        facts: Mapping[str, Relation],
        label: str = "",
    ) -> Relation:
        """Rule-body derivations whose *negated* atom ``neg_atom``
        matches ``delta_rel``: the derivations killed when the negated
        fact gains those tuples, or unblocked when it loses them.  The
        trigger is planned as an extra delta-anchored positive conjunct
        (its variables are all bound by the positive atoms), so the
        cost scales with the changed tuples."""
        extra = Atom(neg_atom.name, neg_atom.vars)
        others = tuple(a for a in rule.negated if a is not neg_atom)
        synth = Rule(rule.head, rule.positive + (extra,), others, ())
        return self._bound_eval(
            synth, len(rule.positive), delta_rel, fulls, facts,
            label=label or f"~{neg_atom.name}:{rule.label}",
        )

    def _rederive_eval(self, rule: Rule, deleted: Relation) -> Relation:
        """The subset of ``deleted`` head tuples this rule still
        derives from the current (post-deletion) state: the body plus
        the deleted set as a delta-anchored conjunct over the head
        variables."""
        extra = Atom(rule.head.name, rule.head.vars)
        synth = Rule(rule.head, rule.positive + (extra,), rule.negated, ())
        return self._bound_eval(
            synth, len(rule.positive), deleted, self._full, self._facts,
            label=f"rederive:{rule.label}",
        )

    def insert(self, name: str, facts) -> Dict[str, Relation]:
        """Add tuples to a base fact (or seed) relation and maintain
        every derived relation incrementally; ``facts`` is a relation
        or an iterable of tuples in the declared attribute order.
        Requires a prior :meth:`solve`."""
        return self.update(inserts={name: facts})

    def retract(self, name: str, facts) -> Dict[str, Relation]:
        """Remove tuples from a base fact (or seed) relation and
        maintain every derived relation via delete/rederive."""
        return self.update(retracts={name: facts})

    def update(
        self,
        inserts: Optional[Mapping[str, object]] = None,
        retracts: Optional[Mapping[str, object]] = None,
    ) -> Dict[str, Relation]:
        """Apply one batch of base-fact insertions and retractions and
        bring all derived relations to the fixed point of the updated
        facts — bit-identical to a from-scratch :meth:`solve`.

        Retractions apply before insertions (a tuple named in both ends
        up present).  Updates always evaluate in-process, even for
        ``engine="parallel"`` engines (the deltas are far too small to
        amortize worker dispatch).  Returns the solution dict; phase
        counters land in :attr:`last_update_stats`.
        """
        if not self._solved:
            raise JeddError("update() requires an initial solve()")
        tel = _telemetry.active()
        mgr = self.universe.manager
        kernel0 = 0.0
        if mgr is not None:
            kernel0 = mgr.stats.nodes_created + mgr.stats.op_totals()[1]
        evals0 = self.rule_evaluations
        old_facts = dict(self._facts)
        old_full = dict(self._full)
        delta_minus: Dict[str, Relation] = {}
        delta_plus: Dict[str, Relation] = {}
        for name, value in (retracts or {}).items():
            rel = self._as_update_relation(name, value)
            d = rel & self._edb_get(name)
            if not d.is_empty():
                delta_minus[name] = d
                self._edb_set(name, self._edb_get(name) - d)
        for name, value in (inserts or {}).items():
            rel = self._as_update_relation(name, value)
            d = rel - self._edb_get(name)
            if not d.is_empty():
                delta_plus[name] = d
                self._edb_set(name, self._edb_get(name) | d)
        stats: Dict[str, float] = {
            "inserted_base": float(
                sum(d.size() for d in delta_plus.values())
            ),
            "retracted_base": float(
                sum(d.size() for d in delta_minus.values())
            ),
            "deleted": 0.0,
            "rederived": 0.0,
            "delete_iterations": 0.0,
            "grow_iterations": 0.0,
            "updates": 1.0,
        }
        self.last_update_stats = stats
        if not delta_plus and not delta_minus:
            stats["rule_evaluations"] = 0.0
            stats["kernel_work"] = 0.0
            return dict(self._full)
        with tel.span(
            "incremental.update",
            cat="incremental",
            inserted=int(stats["inserted_base"]),
            retracted=int(stats["retracted_base"]),
            relations=sorted(set(delta_plus) | set(delta_minus)),
        ):
            deleted = self._overdelete(
                delta_plus, delta_minus, old_full, old_facts, tel, stats
            )
            for name, d in deleted.items():
                if not d.is_empty():
                    self._full[name] = self._full[name] - d
            self._regrow(delta_plus, delta_minus, deleted, tel, stats)
        stats["rule_evaluations"] = float(self.rule_evaluations - evals0)
        if mgr is not None:
            stats["kernel_work"] = (
                mgr.stats.nodes_created + mgr.stats.op_totals()[1] - kernel0
            )
        if tel.enabled:
            tel.record_parallel(stats, prefix="incremental")
        return dict(self._full)

    def _overdelete(
        self,
        delta_plus: Mapping[str, Relation],
        delta_minus: Mapping[str, Relation],
        old_full: Mapping[str, Relation],
        old_facts: Mapping[str, Relation],
        tel,
        stats: Dict[str, float],
    ) -> Dict[str, Relation]:
        """DRed phase 1: everything that *might* have lost its last
        derivation.  Direct kills come from retracted seed tuples,
        retracted facts bound at each positive occurrence, and inserted
        tuples of negated facts; kills then propagate per rule delta
        through the recursive relations, always joining against the
        pre-update solution (``old_full``/``old_facts``)."""
        D = {n: self._empty_like(n) for n in self._order}
        frontier = {n: self._empty_like(n) for n in self._order}
        with tel.span("incremental.overdelete", cat="incremental"):
            self._memo = {}
            try:
                for name, d in delta_minus.items():
                    if name in self._seeds:
                        frontier[name] = frontier[name] | (
                            d & old_full[name]
                        )
                for rule in self._rules:
                    head = rule.head.name
                    for i, atom in enumerate(rule.positive):
                        if atom.name in self._seeds:
                            continue
                        d = delta_minus.get(atom.name)
                        if d is None:
                            continue
                        out = self._bound_eval(
                            rule, i, d, old_full, old_facts,
                            label=f"kill:{rule.label}",
                        )
                        frontier[head] = frontier[head] | (
                            out & old_full[head]
                        )
                    for atom in rule.negated:
                        d = delta_plus.get(atom.name)
                        if d is None:
                            continue
                        out = self._neg_trigger_eval(
                            rule, atom, d, old_full, old_facts,
                            label=f"kill~{atom.name}:{rule.label}",
                        )
                        frontier[head] = frontier[head] | (
                            out & old_full[head]
                        )
                while True:
                    for n in self._order:
                        frontier[n] = frontier[n] - D[n]
                    if all(frontier[n].is_empty() for n in self._order):
                        break
                    stats["delete_iterations"] += 1.0
                    for n in self._order:
                        D[n] = D[n] | frontier[n]
                    nxt = {n: self._empty_like(n) for n in self._order}
                    for rule in self._rules:
                        head = rule.head.name
                        for pos in rule.recursive_positions:
                            src = rule.positive[pos].name
                            if frontier[src].is_empty():
                                continue
                            out = self._bound_eval(
                                rule, pos, frontier[src],
                                old_full, old_facts,
                                label=f"kill+:{rule.label}",
                            )
                            nxt[head] = nxt[head] | (
                                out & old_full[head]
                            )
                    frontier = nxt
            finally:
                self._memo = None
        stats["deleted"] = float(sum(D[n].size() for n in self._order))
        return D

    def _regrow(
        self,
        delta_plus: Mapping[str, Relation],
        delta_minus: Mapping[str, Relation],
        deleted: Mapping[str, Relation],
        tel,
        stats: Dict[str, float],
    ) -> None:
        """DRed phases 2+3: rederive over-deleted tuples that survive
        on the updated facts, then run the ordinary semi-naive loop
        seeded with the rederivations, the insertions, and the
        derivations newly unblocked by retractions from negated
        facts."""
        grown = {n: self._empty_like(n) for n in self._order}
        with tel.span("incremental.rederive", cat="incremental"):
            self._memo = {}
            try:
                for n in self._order:
                    if deleted[n].is_empty():
                        continue
                    back = self._apply_filter(
                        n, deleted[n] & self._seeds[n]
                    )
                    grown[n] = grown[n] | back
                for rule in self._rules:
                    head = rule.head.name
                    if deleted[head].is_empty():
                        continue
                    out = self._rederive_eval(rule, deleted[head])
                    grown[head] = grown[head] | self._apply_filter(
                        head, out
                    )
            finally:
                self._memo = None
        stats["rederived"] = float(
            sum((grown[n] & deleted[n]).size() for n in self._order)
        )
        with tel.span("incremental.grow", cat="incremental"):
            self._memo = {}
            try:
                for name, d in delta_plus.items():
                    if name in self._seeds:
                        grown[name] = grown[name] | self._apply_filter(
                            name, d
                        )
                for rule in self._rules:
                    head = rule.head.name
                    for i, atom in enumerate(rule.positive):
                        if atom.name in self._seeds:
                            continue
                        d = delta_plus.get(atom.name)
                        if d is None:
                            continue
                        out = self._bound_eval(
                            rule, i, d, self._full, self._facts,
                            label=f"grow:{rule.label}",
                        )
                        grown[head] = grown[head] | self._apply_filter(
                            head, out
                        )
                    for atom in rule.negated:
                        d = delta_minus.get(atom.name)
                        if d is None:
                            continue
                        out = self._neg_trigger_eval(
                            rule, atom, d, self._full, self._facts,
                            label=f"grow~{atom.name}:{rule.label}",
                        )
                        grown[head] = grown[head] | self._apply_filter(
                            head, out
                        )
            finally:
                self._memo = None
            for n in self._order:
                fresh = grown[n] - self._full[n]
                self._delta[n] = fresh
                if not fresh.is_empty():
                    self._full[n] = self._full[n] | fresh
            while any(
                not self._delta[n].is_empty() for n in self._order
            ):
                stats["grow_iterations"] += 1.0
                self.iterations += 1
                self._iterate(tel)

    def __getitem__(self, name: str) -> Relation:
        """The current value of a recursive relation or fact."""
        if name in self._full:
            return self._full[name]
        if name in self._seeds:
            return self._seeds[name]
        return self._facts[name]
