"""Backend adapters: one relational operation set, two diagram engines.

Section 4.1 of the paper stresses that Jedd programs run unmodified on
different decision-diagram backends (BuDDy, CUDD, and an in-progress ZDD
backend).  The relation layer therefore talks to this small adapter
interface rather than to a manager directly.

The essential semantic difference the adapters hide: in the BDD
encoding, bits not used by a relation are *wildcards* (any value), so a
join is a plain conjunction; in the ZDD encoding an absent bit means
**0**, so the adapter inserts explicit don't-care expansion over the
other operand's private bits before intersecting.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Sequence

from repro.bdd import FALSE, TRUE, BDDManager, MTBDDManager, ZDDManager
from repro.telemetry import traced as _traced
from repro.bdd.zdd import BASE, EMPTY

__all__ = [
    "DiagramBackend",
    "BDDBackend",
    "ZDDBackend",
    "MultiTerminalBackend",
    "PipelineStep",
    "UnsupportedByBackend",
    "BOOLEAN_TERMINALS",
    "make_backend",
]

#: The terminal domain every boolean backend reports: a diagram maps
#: each tuple to 0 (absent) or 1 (present).
BOOLEAN_TERMINALS = frozenset({0, 1})


@dataclass(frozen=True)
class PipelineStep:
    """One conjunct of a fused relational product (see
    :meth:`DiagramBackend.relprod_pipeline`).

    ``b`` is the operand diagram; ``b_perm`` aligns it to the running
    result before the conjunction (attribute -> shared physical domain
    moves, as a variable permutation).  ``cmp_levels`` /
    ``a_only_levels`` / ``b_only_levels`` describe the post-alignment
    level sets exactly as for :meth:`DiagramBackend.match`.
    ``exist_levels`` are quantified away after the conjunction: the
    variables dead after this step — not automatically the compared
    ones, which later conjuncts may still need.  ``perm`` optionally
    permutes the step's result (e.g. a final move into the consumer's
    physical domains).
    """

    b: int
    cmp_levels: Sequence[int] = ()
    a_only_levels: Sequence[int] = ()
    b_only_levels: Sequence[int] = ()
    exist_levels: Sequence[int] = ()
    b_perm: Dict[int, int] = field(default_factory=dict)
    perm: Dict[int, int] = field(default_factory=dict)


class UnsupportedByBackend(Exception):
    """An optional capability (e.g. dynamic reordering) the selected
    diagram engine does not provide.  Mirrors how Jedd surfaces the
    feature gaps between BuDDy, CUDD, and the ZDD backend."""


class _NullReorderGuard:
    """No-op stand-in for ``disable_reorder()`` on backends without
    dynamic reordering, so hot-loop guards stay backend-portable."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return None


class DiagramBackend:
    """Abstract relational operations over diagram node handles."""

    name = "abstract"

    def __init__(self, manager) -> None:
        self.manager = manager

    # Terminal domain -----------------------------------------------------
    def terminal_domain(self) -> frozenset:
        """Values a diagram may map tuples to.

        Boolean backends report ``{0, 1}`` (membership); the
        multi-terminal backend reports ``None``, meaning any number —
        the relational layer uses this to decide whether weighted
        relations can live on this backend.
        """
        return BOOLEAN_TERMINALS

    def supports_weights(self) -> bool:
        """Whether diagrams may carry non-boolean terminal values."""
        return self.terminal_domain() is None

    # Constants ---------------------------------------------------------
    def empty(self) -> int:
        """Handle of the empty relation (0B)."""
        raise NotImplementedError

    def full(self, levels: Sequence[int]) -> int:
        """Handle of the full relation (1B) over the given used levels."""
        raise NotImplementedError

    # Construction ------------------------------------------------------
    def cube(self, assignment: Dict[int, bool]) -> int:
        """Single tuple: a complete assignment of the used levels."""
        raise NotImplementedError

    # Set algebra (operands must use the same level set) ----------------
    def union(self, a: int, b: int) -> int:
        raise NotImplementedError

    def intersect(self, a: int, b: int) -> int:
        raise NotImplementedError

    def diff(self, a: int, b: int) -> int:
        raise NotImplementedError

    # Attribute operations ----------------------------------------------
    def project(self, a: int, levels: Iterable[int]) -> int:
        """Remove the given levels (existential quantification)."""
        raise NotImplementedError

    def match(
        self,
        a: int,
        b: int,
        cmp_levels: Sequence[int],
        a_only_levels: Sequence[int],
        b_only_levels: Sequence[int],
        quantify: bool,
    ) -> int:
        """Join (``quantify=False``) or compose (``True``) at diagram level.

        ``cmp_levels`` are shared by both operands (the compared
        attributes, pre-aligned to the same physical domains);
        ``a_only_levels``/``b_only_levels`` are private to one operand.
        """
        raise NotImplementedError

    def replace(self, a: int, perm: Dict[int, int]) -> int:
        """Move bits between physical domains (level permutation)."""
        raise NotImplementedError

    def equality(
        self,
        levels_a: Sequence[int],
        levels_b: Sequence[int],
        values: Sequence[int],
    ) -> int:
        """Relation {(v, v)} used for attribute copying.

        ``levels_a[j]``/``levels_b[j]`` hold bit j.  ``values`` lists the
        interned integer encodings present in the attribute's domain (the
        BDD backend may ignore it and equate all bit patterns).
        """
        raise NotImplementedError

    # Inspection ----------------------------------------------------------
    def count(self, a: int, levels: Sequence[int]) -> int:
        """Number of tuples over the given used levels."""
        raise NotImplementedError

    def all_sat(
        self, a: int, levels: Sequence[int]
    ) -> Iterator[Dict[int, bool]]:
        """Iterate complete assignments of the used levels."""
        raise NotImplementedError

    def node_count(self, a: int) -> int:
        return self.manager.node_count(a)

    def shape(self, a: int) -> List[int]:
        return self.manager.shape(a)

    # Memory management ---------------------------------------------------
    def ref(self, a: int) -> int:
        return self.manager.ref(a)

    def deref(self, a: int) -> None:
        self.manager.deref(a)

    def maybe_gc(self) -> bool:
        return self.manager.maybe_gc()

    # Dynamic variable reordering (optional capability) -------------------
    def supports_reorder(self) -> bool:
        """Whether this backend can reorder variables at run time."""
        return False

    def reorder(self, groups=None, max_growth=None):
        """Run one reordering pass now; returns a ``ReorderEvent``."""
        raise UnsupportedByBackend(
            f"the {self.name} backend does not support dynamic "
            f"variable reordering"
        )

    def enable_reorder(
        self, threshold=None, max_growth=None, groups=None
    ) -> None:
        """Enable automatic reordering on node-table growth."""
        raise UnsupportedByBackend(
            f"the {self.name} backend does not support dynamic "
            f"variable reordering"
        )

    def disable_reorder(self):
        """Context manager suppressing automatic reordering.

        A no-op on backends without reordering, so relation code can
        guard hot loops without checking :meth:`supports_reorder`.
        """
        return _NullReorderGuard()

    # Fused relational products -------------------------------------------
    def relprod_pipeline(self, a: int, steps: Sequence[PipelineStep]) -> int:
        """Chain join -> project -> rename steps without materialising
        named intermediates.

        The generic implementation lowers each step to the portable
        ``match``/``project``/``replace`` primitives; the BDD backend
        overrides it to fuse each conjunction+quantification into a
        single ``and_exist`` kernel call.  Intermediate handles are
        never wrapped in :class:`Relation` objects, so no garbage
        collection can run between steps; automatic reordering is
        suppressed for the duration so level sets stay valid.
        """
        node = a
        with self.disable_reorder():
            for step in steps:
                b = step.b
                if step.b_perm:
                    b = self.replace(b, step.b_perm)
                node = self.match(
                    node,
                    b,
                    step.cmp_levels,
                    step.a_only_levels,
                    step.b_only_levels,
                    False,
                )
                if step.exist_levels:
                    node = self.project(node, step.exist_levels)
                if step.perm:
                    node = self.replace(node, step.perm)
        return node


class BDDBackend(DiagramBackend):
    """Adapter over :class:`repro.bdd.BDDManager` (the BuDDy/CUDD role)."""

    name = "bdd"

    def __init__(self, manager: BDDManager) -> None:
        super().__init__(manager)

    def empty(self) -> int:
        return FALSE

    def full(self, levels: Sequence[int]) -> int:
        # Unused bits are wildcards, so the full relation is just TRUE.
        return TRUE

    def cube(self, assignment: Dict[int, bool]) -> int:
        return self.manager.cube(assignment)

    @_traced("bdd.union", "kernel")
    def union(self, a: int, b: int) -> int:
        return self.manager.apply_or(a, b)

    @_traced("bdd.intersect", "kernel")
    def intersect(self, a: int, b: int) -> int:
        return self.manager.apply_and(a, b)

    @_traced("bdd.diff", "kernel")
    def diff(self, a: int, b: int) -> int:
        return self.manager.apply_diff(a, b)

    @_traced("bdd.project", "kernel")
    def project(self, a: int, levels: Iterable[int]) -> int:
        return self.manager.exist(a, levels)

    @_traced("bdd.match", "kernel")
    def match(self, a, b, cmp_levels, a_only_levels, b_only_levels, quantify):
        # Private bits are wildcards in the other operand: plain AND works
        # (paper 3.2.2); compose fuses the projection (bdd_appex).
        if quantify:
            return self.manager.and_exist(a, b, cmp_levels)
        return self.manager.apply_and(a, b)

    @_traced("bdd.replace", "kernel")
    def replace(self, a: int, perm: Dict[int, int]) -> int:
        return self.manager.replace(a, perm)

    def equality(self, levels_a, levels_b, values) -> int:
        node = TRUE
        for la, lb in zip(levels_a, levels_b):
            both = self.manager.apply_and(
                self.manager.var(la), self.manager.var(lb)
            )
            neither = self.manager.apply_and(
                self.manager.nvar(la), self.manager.nvar(lb)
            )
            node = self.manager.apply_and(
                node, self.manager.apply_or(both, neither)
            )
        return node

    @_traced("bdd.count", "kernel")
    def count(self, a: int, levels: Sequence[int]) -> int:
        return self.manager.sat_count(a, levels)

    def all_sat(self, a, levels):
        return self.manager.all_sat(a, levels)

    def supports_reorder(self) -> bool:
        return True

    def reorder(self, groups=None, max_growth=None):
        return self.manager.reorder(groups=groups, max_growth=max_growth)

    def enable_reorder(
        self, threshold=None, max_growth=None, groups=None
    ) -> None:
        self.manager.enable_reorder(
            threshold=threshold, max_growth=max_growth, groups=groups
        )

    def disable_reorder(self):
        return self.manager.disable_reorder()

    @_traced("bdd.relprod_pipeline", "kernel")
    def relprod_pipeline(self, a: int, steps: Sequence[PipelineStep]) -> int:
        # Each step becomes one and_exist (bdd_appex): the conjunction
        # and the quantification of the step's dead variables share a
        # single traversal and one cache, which is where the semi-naive
        # engine's kernel savings come from.
        m = self.manager
        node = a
        with self.disable_reorder():
            for step in steps:
                b = step.b
                if step.b_perm:
                    b = m.replace(b, step.b_perm)
                if step.exist_levels:
                    node = m.and_exist(node, b, step.exist_levels)
                else:
                    node = m.apply_and(node, b)
                if step.perm:
                    node = m.replace(node, step.perm)
        return node


class ZDDBackend(DiagramBackend):
    """Adapter over :class:`repro.bdd.ZDDManager` (section 4.1's ZDD plan)."""

    name = "zdd"

    def __init__(self, manager: ZDDManager) -> None:
        super().__init__(manager)

    def empty(self) -> int:
        return EMPTY

    def full(self, levels: Sequence[int]) -> int:
        return self.manager.dontcare(BASE, levels)

    def cube(self, assignment: Dict[int, bool]) -> int:
        return self.manager.cube(assignment)

    @_traced("zdd.union", "kernel")
    def union(self, a: int, b: int) -> int:
        return self.manager.union(a, b)

    @_traced("zdd.intersect", "kernel")
    def intersect(self, a: int, b: int) -> int:
        return self.manager.intersect(a, b)

    @_traced("zdd.diff", "kernel")
    def diff(self, a: int, b: int) -> int:
        return self.manager.diff(a, b)

    @_traced("zdd.project", "kernel")
    def project(self, a: int, levels: Iterable[int]) -> int:
        return self.manager.exist(a, levels)

    @_traced("zdd.match", "kernel")
    def match(self, a, b, cmp_levels, a_only_levels, b_only_levels, quantify):
        # Absent bits mean 0 in ZDDs, so each operand must be expanded
        # over the other's private bits before intersecting.
        a_exp = self.manager.dontcare(a, b_only_levels)
        b_exp = self.manager.dontcare(b, a_only_levels)
        joined = self.manager.intersect(a_exp, b_exp)
        if quantify:
            return self.manager.exist(joined, cmp_levels)
        return joined

    @_traced("zdd.replace", "kernel")
    def replace(self, a: int, perm: Dict[int, int]) -> int:
        return self.manager.replace(a, perm)

    def equality(self, levels_a, levels_b, values) -> int:
        node = EMPTY
        for value in values:
            assignment = {}
            for j, (la, lb) in enumerate(zip(levels_a, levels_b)):
                bit = bool(value >> j & 1)
                assignment[la] = bit
                assignment[lb] = bit
            node = self.manager.union(node, self.manager.cube(assignment))
        return node

    @_traced("zdd.count", "kernel")
    def count(self, a: int, levels: Sequence[int]) -> int:
        return self.manager.count(a)

    def all_sat(self, a, levels):
        return self.manager.all_sat(a, levels)


class MultiTerminalBackend(DiagramBackend):
    """Adapter over :class:`repro.bdd.MTBDDManager` (ADD/MTBDD diagrams).

    Boolean relations are the ``{0, 1}``-terminal special case, so the
    whole relational operation set works unchanged — a join is still a
    conjunction, projection is still ``or``-abstraction — and the
    inherited generic :meth:`relprod_pipeline` keeps the boolean
    semantics exactly (lowered to match/project/replace, unfused).  On
    top of that the backend exposes the weighted operations the
    aggregate executor needs: pointwise arithmetic combinators and
    sum/max/min-abstraction.
    """

    name = "mtbdd"

    def __init__(self, manager: MTBDDManager) -> None:
        super().__init__(manager)

    def terminal_domain(self):
        return None  # any numeric terminal

    def empty(self) -> int:
        return FALSE

    def full(self, levels: Sequence[int]) -> int:
        return TRUE

    def cube(self, assignment: Dict[int, bool]) -> int:
        return self.manager.cube(assignment)

    @_traced("mtbdd.union", "kernel")
    def union(self, a: int, b: int) -> int:
        return self.manager.apply_or(a, b)

    @_traced("mtbdd.intersect", "kernel")
    def intersect(self, a: int, b: int) -> int:
        return self.manager.apply_and(a, b)

    @_traced("mtbdd.diff", "kernel")
    def diff(self, a: int, b: int) -> int:
        return self.manager.apply_diff(a, b)

    @_traced("mtbdd.project", "kernel")
    def project(self, a: int, levels: Iterable[int]) -> int:
        return self.manager.exist(a, levels)

    @_traced("mtbdd.match", "kernel")
    def match(self, a, b, cmp_levels, a_only_levels, b_only_levels, quantify):
        if quantify:
            return self.manager.and_exist(a, b, cmp_levels)
        return self.manager.apply_and(a, b)

    @_traced("mtbdd.replace", "kernel")
    def replace(self, a: int, perm: Dict[int, int]) -> int:
        return self.manager.replace(a, perm)

    def equality(self, levels_a, levels_b, values) -> int:
        node = TRUE
        for la, lb in zip(levels_a, levels_b):
            both = self.manager.apply_and(
                self.manager.var(la), self.manager.var(lb)
            )
            neither = self.manager.apply_and(
                self.manager.nvar(la), self.manager.nvar(lb)
            )
            node = self.manager.apply_and(
                node, self.manager.apply_or(both, neither)
            )
        return node

    @_traced("mtbdd.count", "kernel")
    def count(self, a: int, levels: Sequence[int]) -> int:
        return self.manager.sat_count(a, levels)

    def all_sat(self, a, levels):
        return self.manager.all_sat(a, levels)

    # Weighted operations (only this backend provides them) --------------
    def terminal(self, value) -> int:
        """The constant diagram carrying ``value``."""
        return self.manager.terminal(value)

    def terminal_value(self, node: int):
        """The number carried by a terminal node handle."""
        return self.manager.value(node)

    @_traced("mtbdd.apply", "kernel")
    def apply(self, op: str, a: int, b: int) -> int:
        """Pointwise combinator (``add``/``mul``/``max``/``min``/...)."""
        return self.manager.apply(op, a, b)

    @_traced("mtbdd.ite", "kernel")
    def ite(self, f: int, g: int, h: int) -> int:
        """Pointwise if-then-else with a boolean guard diagram."""
        return self.manager.ite(f, g, h)

    @_traced("mtbdd.abstract", "kernel")
    def abstract(self, op: str, a: int, levels: Iterable[int]) -> int:
        """Quantify levels by ``or``/``add``/``max``/``min``."""
        return self.manager.abstract(op, a, levels)

    @_traced("mtbdd.weighted_total", "kernel")
    def weighted_total(self, a: int, levels: Sequence[int]):
        """Sum of the diagram over all assignments of ``levels``."""
        return self.manager.weighted_total(a, levels)

    def all_terminals(self, a, levels):
        """Iterate ``(assignment, value)`` pairs with non-zero value."""
        return self.manager.all_terminals(a, levels)

    def evaluate(self, a: int, assignment: Dict[int, bool]):
        """Terminal value of one complete assignment (weight lookup)."""
        return self.manager.evaluate(a, assignment)


def _backend_for(manager) -> DiagramBackend:
    """Wrap a manager in the matching adapter (internal)."""
    if isinstance(manager, MTBDDManager):
        return MultiTerminalBackend(manager)
    if isinstance(manager, BDDManager):
        return BDDBackend(manager)
    if isinstance(manager, ZDDManager):
        return ZDDBackend(manager)
    raise TypeError(f"unsupported manager type {type(manager).__name__}")


def make_backend(manager) -> DiagramBackend:
    """Deprecated: construct universes with
    :func:`repro.relations.open_universe` instead of wrapping managers
    by hand."""
    warnings.warn(
        "make_backend() is deprecated; use repro.relations.open_universe()"
        " (or Universe/Relation constructors) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _backend_for(manager)
