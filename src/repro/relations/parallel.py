"""Parallel rule evaluation over worker processes.

Within one semi-naive round every ``(rule, delta position)`` evaluation
is independent — each reads the previous round's delta/full relations
and produces a contribution that is unioned afterwards — so the round
can fan out across cores.  CPython threads cannot help (the kernels are
pure Python), so this module runs a pool of **processes**, each holding
its own fresh ``BDDManager``/``ZDDManager``:

- at pool start, each worker rebuilds the universe from a picklable
  spec (domains with their interned objects, attributes, physical
  domains with their stable variable ids) and loads the static fact
  relations, shipped once in the binary wire format of
  :mod:`repro.bdd.io`;
- each round, the coordinator serializes the delta/full relations a
  task needs (normalized into their *declared* physical domains, so no
  scratch domain allocated mid-solve leaks across the process
  boundary), dispatches tasks — each carrying the coordinator-planned
  :class:`~repro.relations.ir.RulePlan`, so workers execute the exact
  schedule the serial path would instead of re-deriving step lists —
  and deserializes each worker's contribution diagram back into its
  own manager.

Serialized wire bytes are cached across rounds, keyed by (manager,
diagram node, reorder generation): a full relation that did not change
since the previous round is not re-serialized, and the bytes avoided
are reported as ``bytes_saved`` / ``wire_cache_hits`` in
:attr:`FixpointEngine.parallel_stats`.  Cached nodes are pinned with a
manager reference so a slot can never be recycled under a live cache
entry.

Diagrams are written by stable variable id and rebuilt through the
receiving manager's hash-consing, so a worker whose manager has the
identity variable order interoperates exactly with a coordinator that
has dynamically reordered (see ``docs/PARALLEL.md``).

Failure handling is the executor's other job: every batch has a
progress deadline (``task_timeout`` since the last result), dead
workers are detected by polling, a failed batch is retried once —
restarting the pool if it is unhealthy — and if tasks still cannot be
completed the executor marks itself ``broken`` and the engine finishes
the solve (and this round's leftover tasks) on the serial path.  A
crashed or hung pool can therefore never wedge or corrupt a solve; the
worst case is losing the speedup.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import pickle
import queue
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bdd import BDDManager, ZDDManager
from repro.bdd.io import dumps_diagram_binary, loads_diagram_binary
from repro.relations.domain import PhysicalDomain, Universe
from repro.relations.relation import Relation, Schema

__all__ = ["ParallelExecutor"]

#: Once a worker process is seen dead, how long the coordinator keeps
#: collecting results from the survivors before declaring the batch
#: unhealthy (the dead worker's in-flight task can never arrive).
_DEAD_WORKER_GRACE = 0.5

#: A schema shipped by name: ``((attr_name, physdom_name), ...)``.
SchemaSpec = Tuple[Tuple[str, str], ...]


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _build_universe(spec: dict) -> Universe:
    """Reconstruct a universe in a worker from its picklable spec.

    Bypasses ``finalize()``: the physical domains carry the coordinator's
    level assignments (stable variable ids) verbatim, and the manager is
    created directly with the coordinator's variable count.
    """
    u = Universe(
        backend=spec["backend"],
        ordering="interleaved",
        kernel=spec.get("kernel", "reference"),
    )
    for name, max_size, objs in spec["domains"]:
        dom = u.domain(name, max_size)
        for obj in objs:
            dom.intern(obj)
    for name, dom_name in spec["attributes"]:
        u.attribute(name, u.get_domain(dom_name))
    scratch_max = 0
    for name, bits, levels in spec["physdoms"]:
        pd = PhysicalDomain(name, bits)
        pd.levels = list(levels)
        u._physdoms[name] = pd
        u._physdom_order.append(pd)
        if name.startswith("__scratch"):
            try:
                scratch_max = max(scratch_max, int(name[len("__scratch"):]))
            except ValueError:
                pass
    # Fresh worker-side scratch domains must not collide with shipped ones.
    u._scratch_counter = scratch_max
    if spec["backend"] == "bdd":
        if u.kernel_name == "arena":
            from repro.bdd.arena import ArenaBDDManager

            u.manager = ArenaBDDManager(spec["num_vars"])
        elif u.kernel_name == "ooc":
            # Each worker gets its own manager and hence its own
            # private spill directory (from JEDD_OOC_SPILL_DIR or a
            # fresh tempdir) — spill files are never shared.
            from repro.bdd.ooc import OocBDDManager

            u.manager = OocBDDManager(spec["num_vars"])
        else:
            u.manager = BDDManager(spec["num_vars"])
    else:
        u.manager = ZDDManager(spec["num_vars"])
    return u


def _make_relation(u: Universe, spec: SchemaSpec, node: int) -> Relation:
    pairs = [(u.get_attribute(a), u.get_physdom(p)) for a, p in spec]
    return Relation(u, Schema(pairs), node)


def _maybe_inject_fault(
    fi: Optional[dict], rule, attempt: int, iteration: int
) -> None:
    """Deterministic test hook: misbehave on early attempts of matching
    tasks.  ``fi`` ships in the worker init payload; production solves
    pass None and this is a single falsy check.  Optional keys narrow
    the blast radius: ``head`` (rule head name), ``iteration`` (only
    that semi-naive round — restarted workers have no memory, so an
    unconditional hang/exit would otherwise recur every round),
    ``max_attempt`` (stop injecting from that retry attempt on)."""
    if not fi:
        return
    head = fi.get("head")
    if head is not None and rule.head.name != head:
        return
    it = fi.get("iteration")
    if it is not None and iteration != it:
        return
    if attempt >= fi.get("max_attempt", 1):
        return
    mode = fi.get("mode", "raise")
    if mode == "raise":
        raise RuntimeError(f"injected fault in rule {rule.label}")
    if mode == "hang":
        time.sleep(fi.get("hang_seconds", 600.0))
    elif mode == "exit":
        os._exit(3)


def _sever_inherited_observers() -> None:
    """Detach every coordinator-owned observability hook a forked child
    inherits, so nothing the worker does can fire coordinator callbacks.

    Three pieces of state cross the fork boundary:

    - the active telemetry session — ``disable()`` detaches the
      GC/reorder listeners it registered on (the child's copies of) the
      coordinator's managers;
    - an installed :class:`~repro.profiler.Profiler` — its wrappers are
      monkey-patched onto the ``Relation`` *class*, so without an
      explicit ``uninstall()`` every worker relation op would keep
      recording events into the forked profiler copy and its reorder
      listeners would stay hooked on inherited managers (this was the
      gap: clearing ``Relation.profiler`` alone leaves the patched
      methods live);
    - as a belt-and-braces backstop, any listener the above didn't own
      is cleared from managers reachable through the inherited profiler
      (third-party hooks must not fire in a child either).
    """
    try:
        from repro import telemetry as _telemetry

        _telemetry.disable()
    except Exception:
        pass
    prof = getattr(Relation, "profiler", None)
    if prof is not None:
        try:
            observed = list(getattr(prof, "_observed_managers", ()))
            prof.uninstall()
            for manager in observed:
                for attr in ("gc_listeners", "reorder_listeners"):
                    listeners = getattr(manager, attr, None)
                    if listeners:
                        listeners.clear()
        except Exception:
            Relation.profiler = None


def _worker_telemetry(trace_spec: Optional[dict], manager):
    """Start the worker-local telemetry session (or none).

    The session is private to this process: a bounded tracer plus the
    worker's own manager wired for per-span kernel-counter deltas.  It
    is registered as the process-global active session so the existing
    ``traced`` instrumentation on ``Relation`` and the backend adapters
    records into the worker's lane — never into coordinator state,
    which :func:`_sever_inherited_observers` has already detached.
    """
    if not trace_spec or not trace_spec.get("enabled"):
        return None
    from repro import telemetry as _telemetry

    session = _telemetry.Telemetry(
        max_spans=int(trace_spec.get("max_spans", 50_000))
    )
    _telemetry.enable(session)
    session.instrument_manager(manager)
    return session


def _drain_worker_spans(wtel) -> Optional[dict]:
    """Pack the worker session's finished spans (plus a clock sample for
    offset alignment) into a picklable result-message extra; clears the
    worker tracer so buffers stay bounded per task."""
    if wtel is None:
        return None
    tracer = wtel.tracer
    spans = tracer.export_spans()
    dropped = tracer.dropped
    tracer.clear()
    return {
        "pid": os.getpid(),
        "clock": time.perf_counter(),
        "spans": spans,
        "dropped": dropped,
    }


def _worker_main(worker_id: int, init_bytes: bytes, task_q, result_q) -> None:
    """Worker process entry point (module-level, so ``spawn`` works)."""
    # Under fork the child inherits the coordinator's telemetry session
    # and profiler hooks; sever everything so worker-side kernel calls
    # never touch coordinator-owned state, then (when the coordinator
    # asked for tracing) open a worker-local session whose span buffers
    # ship back with each result.
    _sever_inherited_observers()
    wtel = None
    try:
        from repro.relations.fixpoint import (
            eval_rule_body,
            execute_rule_plan,
        )

        init = pickle.loads(init_bytes)
        u = _build_universe(init["universe"])
        manager = u.manager
        rel_schemas: Dict[str, SchemaSpec] = init["rel_schemas"]
        recursive = set(init["recursive"])
        rules = init["rules"]
        fi = init.get("fault_injection")
        wtel = _worker_telemetry(init.get("trace"), manager)
        facts = {
            name: _make_relation(
                u, rel_schemas[name], loads_diagram_binary(manager, payload)
            )
            for name, payload in init["facts"].items()
        }
    except BaseException as exc:  # report anything, incl. SystemExit
        try:
            result_q.put(
                ("init-error", False, repr(exc), worker_id, 0.0, None, None)
            )
        except Exception:
            pass
        return
    if wtel is not None:
        # Announce the worker's clock so the coordinator can align this
        # lane's spans before any task result arrives.
        try:
            result_q.put(("init-ok", True, None, worker_id, 0.0, None,
                          {"pid": os.getpid(), "clock": time.perf_counter()}))
        except Exception:
            pass
    while True:
        msg = task_q.get()
        if msg is None:
            return
        key, attempt, iteration, ri, pos, plan, wires = msg
        start = time.perf_counter()
        try:
            rule = rules[ri]
            _maybe_inject_fault(fi, rule, attempt, iteration)
            stats = manager.stats
            hits0, misses0 = stats.op_totals()
            nodes0 = stats.nodes_created
            task_span = (
                wtel.span(
                    "parallel.worker_task", cat="worker",
                    rule=rule.label, iteration=iteration, attempt=attempt,
                )
                if wtel is not None
                else contextlib.nullcontext()
            )
            with task_span, u.scope():
                wire_rels = {
                    wkey: _make_relation(
                        u,
                        rel_schemas[wkey[1]],
                        loads_diagram_binary(manager, data),
                    )
                    for wkey, data in wires.items()
                }

                def atom_value(atom, use_delta):
                    if atom.name in recursive:
                        rel = wire_rels[
                            ("delta" if use_delta else "full", atom.name)
                        ]
                    else:
                        rel = facts[atom.name]
                    names = [a for a, _ in rel_schemas[atom.name]]
                    mapping = {
                        n: v for n, v in zip(names, atom.vars) if n != v
                    }
                    return rel.rename(mapping) if mapping else rel

                head_spec = rel_schemas[rule.head.name]
                if plan is not None:
                    # Execute the coordinator's plan verbatim.
                    out = execute_rule_plan(
                        rule,
                        plan,
                        atom_value,
                        lambda atom: atom_value(atom, False),
                        label=rule.label,
                    )
                else:
                    out = eval_rule_body(
                        rule,
                        pos,
                        atom_value,
                        lambda atom: atom_value(atom, False),
                        [a for a, _ in head_spec],
                    )
                # Contributions ship in the declared head schema so the
                # coordinator (and any other worker) can place them
                # without knowing this worker's scratch domains.
                out = out.replace({a: p for a, p in head_spec})
                payload = dumps_diagram_binary(manager, out.node)
            hits1, misses1 = stats.op_totals()
            kstats = {
                "nodes_created": stats.nodes_created - nodes0,
                "cache_hits": hits1 - hits0,
                "cache_misses": misses1 - misses0,
            }
            result_q.put(
                (key, True, payload, worker_id,
                 time.perf_counter() - start, kstats,
                 _drain_worker_spans(wtel))
            )
        except BaseException as exc:
            try:
                result_q.put(
                    (key, False, repr(exc), worker_id,
                     time.perf_counter() - start, None,
                     _drain_worker_spans(wtel))
                )
            except Exception:
                return


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------


class _Pool:
    """A batch of worker processes sharing one task and one result queue."""

    def __init__(self, ctx, workers: int, init_bytes: bytes) -> None:
        self.task_q = ctx.Queue()
        self.result_q = ctx.Queue()
        self.procs = []
        for wid in range(workers):
            p = ctx.Process(
                target=_worker_main,
                args=(wid, init_bytes, self.task_q, self.result_q),
                daemon=True,
            )
            p.start()
            self.procs.append(p)

    def any_dead(self) -> bool:
        return any(not p.is_alive() for p in self.procs)

    def shutdown(self, force: bool = False) -> None:
        if not force:
            for _ in self.procs:
                try:
                    self.task_q.put(None)
                except Exception:
                    pass
        for p in self.procs:
            if force:
                p.terminate()
            else:
                p.join(timeout=1.0)
                if p.is_alive():
                    p.terminate()
        for p in self.procs:
            p.join(timeout=1.0)
        for q in (self.task_q, self.result_q):
            try:
                q.cancel_join_thread()
                q.close()
            except Exception:
                pass


class ParallelExecutor:
    """Dispatch one round's rule evaluations to a process pool.

    Created by :meth:`FixpointEngine.solve` when ``engine="parallel"``;
    see the module docstring for the protocol.  After any unrecoverable
    failure ``broken`` is True and the engine stops calling it.
    """

    def __init__(
        self,
        universe: Universe,
        rules: Sequence,
        facts: Dict[str, Relation],
        recursive_names: Sequence[str],
        rel_schemas: Dict[str, SchemaSpec],
        workers: Optional[int] = None,
        task_timeout: Optional[float] = None,
        fault_injection: Optional[dict] = None,
        trace: Optional[bool] = None,
        trace_max_spans: int = 50_000,
    ) -> None:
        from repro import telemetry as _telemetry

        self.universe = universe
        self.rules = list(rules)
        self.recursive = set(recursive_names)
        self.rel_schemas = rel_schemas
        self.workers = max(1, workers or min(4, os.cpu_count() or 1))
        self.task_timeout = 60.0 if task_timeout is None else task_timeout
        #: Whether workers run a local tracing session and ship span
        #: buffers back with each result; defaults to "the coordinator
        #: had telemetry on when the executor was created".
        self.trace = _telemetry.is_enabled() if trace is None else bool(trace)
        self.broken = False
        self.failure_reason: Optional[str] = None
        self._pool: Optional[_Pool] = None
        self._restarts_left = 2
        self.counters: Dict[str, int] = {
            "rounds": 0,
            "tasks_dispatched": 0,
            "tasks_failed": 0,
            "retries": 0,
            "restarts": 0,
            "serial_fallback_tasks": 0,
            "bytes_shipped": 0,
            "bytes_returned": 0,
            "wire_cache_hits": 0,
            "bytes_saved": 0,
            "worker_spans": 0,
            "worker_spans_dropped": 0,
        }
        #: Per-pid clock alignment: the smallest observed
        #: ``coordinator_perf_counter_at_receive - worker clock sample``
        #: over all messages from that pid.  Queue latency only inflates
        #: a sample, so the minimum converges on the true offset between
        #: the two processes' monotonic clocks.
        self._clock_offsets: Dict[int, float] = {}
        #: Cross-round wire-bytes cache: slot -> (node, reorder
        #: generation, bytes).  Each cached node carries one extra
        #: manager reference (dropped on replacement and in close())
        #: so its slot cannot be garbage-collected and recycled while
        #: the entry is live.
        self._wire_bytes: Dict[Tuple[str, str], Tuple[int, int, bytes]] = {}
        try:
            methods = multiprocessing.get_all_start_methods()
            self._ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            init = {
                "universe": self._universe_spec(),
                "facts": {
                    name: dumps_diagram_binary(universe.manager, rel.node)
                    for name, rel in facts.items()
                },
                "rules": self.rules,
                "recursive": sorted(self.recursive),
                "rel_schemas": rel_schemas,
                "fault_injection": fault_injection,
                "trace": {
                    "enabled": self.trace,
                    "max_spans": int(trace_max_spans),
                },
            }
            self._init_bytes = pickle.dumps(
                init, protocol=pickle.HIGHEST_PROTOCOL
            )
            self._pool = _Pool(self._ctx, self.workers, self._init_bytes)
        except Exception as exc:
            self.broken = True
            self.failure_reason = f"pool startup failed: {exc!r}"
            self._pool = None

    def _universe_spec(self) -> dict:
        u = self.universe
        return {
            "backend": u.backend_name,
            "kernel": getattr(u, "kernel_name", "reference"),
            "num_vars": u.manager.num_vars,
            "domains": [
                (d.name, d.max_size, tuple(d._to_obj))
                for d in u._domains.values()
            ],
            "attributes": [
                (a.name, a.domain.name) for a in u._attributes.values()
            ],
            "physdoms": [
                (pd.name, pd.bits, tuple(pd.levels))
                for pd in u._physdom_order
                if pd.levels is not None
            ],
        }

    def _wire_data(
        self, wkey: Tuple[str, str], node: int, reorder_gen: int
    ) -> bytes:
        """The serialized bytes for ``node`` in wire slot ``wkey``,
        reusing the cross-round cache when the slot still holds the
        same diagram under the same variable order."""
        manager = self.universe.manager
        cached = self._wire_bytes.get(wkey)
        if (
            cached is not None
            and cached[0] == node
            and cached[1] == reorder_gen
        ):
            self.counters["wire_cache_hits"] += 1
            self.counters["bytes_saved"] += len(cached[2])
            return cached[2]
        data = dumps_diagram_binary(manager, node)
        manager.ref(node)
        if cached is not None:
            manager.deref(cached[0])
        self._wire_bytes[wkey] = (node, reorder_gen, data)
        return data

    def _drop_wire_cache(self) -> None:
        manager = self.universe.manager
        for node, _gen, _data in self._wire_bytes.values():
            try:
                manager.deref(node)
            except Exception:
                pass
        self._wire_bytes.clear()

    # -- one round -----------------------------------------------------

    def evaluate_round(
        self,
        tasks: Sequence[Tuple[int, int]],
        delta: Dict[str, Relation],
        full: Dict[str, Relation],
        serial_eval: Callable[[int, int], Relation],
        tel,
        iteration: int,
        plans: Optional[Dict[Tuple[int, int], object]] = None,
    ) -> List[Relation]:
        """Evaluate ``tasks`` (``(rule_index, delta_position)`` pairs);
        returns their contribution relations in task order.

        ``plans`` (keyed like ``tasks``) carries the coordinator-side
        :class:`~repro.relations.ir.RulePlan` each worker should
        execute; tasks without one fall back to worker-side planning.
        Tasks a healthy pool cannot complete within the retry budget
        are evaluated via ``serial_eval`` on the coordinator, so the
        returned list is always complete.
        """
        self.counters["rounds"] += 1
        manager = self.universe.manager
        reorder_gen = manager.stats.reorder_runs
        serialized: Dict[Tuple[str, str], bytes] = {}
        messages: Dict[Tuple[int, int], tuple] = {}
        with tel.span("parallel.serialize", cat="parallel",
                      iteration=iteration):
            for ri, pos in tasks:
                rule = self.rules[ri]
                wires: Dict[Tuple[str, str], bytes] = {}
                for i, atom in enumerate(rule.positive):
                    if atom.name not in self.recursive:
                        continue
                    wkey = ("delta" if i == pos else "full", atom.name)
                    data = serialized.get(wkey)
                    if data is None:
                        rel = (delta if wkey[0] == "delta" else full)[
                            atom.name
                        ]
                        declared = self.rel_schemas[atom.name]
                        normalized = rel.replace(
                            {a: p for a, p in declared}
                        )
                        data = self._wire_data(
                            wkey, normalized.node, reorder_gen
                        )
                        serialized[wkey] = data
                    wires[wkey] = data
                plan = plans.get((ri, pos)) if plans else None
                messages[(ri, pos)] = (ri, pos, plan, wires)

        results: Dict[Tuple[int, int], tuple] = {}
        lane_metas: List[Tuple[int, dict]] = []
        pending = dict(messages)
        with tel.span("parallel.dispatch", cat="parallel",
                      iteration=iteration, tasks=len(messages),
                      workers=self.workers):
            for attempt in range(2):
                if not pending:
                    break
                if self._pool is None and not self._restart():
                    break
                if attempt:
                    self.counters["retries"] += len(pending)
                ok, failures, healthy, metas = self._run_batch(
                    pending, attempt, iteration
                )
                lane_metas.extend(metas)
                results.update(ok)
                for k in ok:
                    pending.pop(k, None)
                for k, err in failures:
                    self.counters["tasks_failed"] += 1
                    tel.add_complete(
                        "parallel.task_error", 0.0, cat="parallel",
                        rule=self.rules[k[0]].label, error=err,
                        iteration=iteration, attempt=attempt,
                    )
                if not healthy:
                    self._teardown_pool(force=True)

        outs: Dict[Tuple[int, int], Relation] = {}
        if pending:
            # Retry budget exhausted: give up on the pool for the rest
            # of this solve and finish the leftovers serially.
            self.broken = True
            self.failure_reason = (
                self.failure_reason or "tasks failed after retry"
            )
            self._teardown_pool(force=True)
            tel.add_complete(
                "parallel.failure", 0.0, cat="parallel",
                iteration=iteration, tasks=len(pending),
                reason=self.failure_reason,
            )
            for key in list(pending):
                ri, pos, _plan, _wires = pending.pop(key)
                self.counters["serial_fallback_tasks"] += 1
                outs[key] = serial_eval(ri, pos)

        with tel.span("parallel.merge", cat="parallel", iteration=iteration):
            for key, (payload, wid, elapsed, kstats) in results.items():
                self.counters["bytes_returned"] += len(payload)
                rule = self.rules[key[0]]
                declared = self.rel_schemas[rule.head.name]
                node = loads_diagram_binary(manager, payload)
                outs[key] = _make_relation(self.universe, declared, node)
                tel.add_complete(
                    "parallel.task", elapsed, cat="parallel",
                    worker=wid, rule=rule.label, iteration=iteration,
                    bytes_out=len(payload), **(kstats or {}),
                )
            self._merge_worker_spans(tel, lane_metas)
        return [outs[key] for key in ((ri, pos) for ri, pos in tasks)]

    def _merge_worker_spans(
        self, tel, lane_metas: Sequence[Tuple[int, dict]]
    ) -> None:
        """Fold shipped worker span buffers into the coordinator session.

        Each span's timestamps are translated from the worker's
        ``perf_counter`` domain into the coordinator's by adding the
        per-pid offset measured from message round-trips (see
        ``_clock_offsets``), so all lanes share one timeline in the
        merged Chrome trace.
        """
        add = getattr(tel, "add_worker_spans", None)
        if add is None:
            return
        for wid, meta in lane_metas:
            spans = meta.get("spans") or ()
            dropped = int(meta.get("dropped", 0))
            if not spans and not dropped:
                continue
            pid = int(meta["pid"])
            offset = self._clock_offsets.get(pid, 0.0)
            if offset:
                aligned = []
                for span in spans:
                    span = dict(span)
                    span["start"] = span["start"] + offset
                    span["end"] = span["end"] + offset
                    aligned.append(span)
                spans = aligned
            add(
                name=f"worker-{wid} (pid {pid})",
                pid=pid,
                spans=spans,
                dropped=dropped,
            )
            self.counters["worker_spans"] += len(spans)
            self.counters["worker_spans_dropped"] += dropped

    def _run_batch(self, pending: Dict, attempt: int, iteration: int):
        """Ship ``pending`` to the pool and collect until done or stalled.

        Returns ``(ok, failures, healthy, lane_metas)``: results keyed
        by task, cleanly-reported worker errors, whether the pool made
        progress (False means hang/crash — terminate and restart it),
        and the worker span buffers that rode along with the messages.
        """
        pool = self._pool
        for key, (ri, pos, plan, wires) in pending.items():
            pool.task_q.put((key, attempt, iteration, ri, pos, plan, wires))
            self.counters["tasks_dispatched"] += 1
            self.counters["bytes_shipped"] += sum(
                len(b) for b in wires.values()
            )
        waiting = set(pending)
        ok: Dict = {}
        failures: List[Tuple[tuple, str]] = []
        lane_metas: List[Tuple[int, dict]] = []
        deadline = time.monotonic() + self.task_timeout
        dead_seen = False
        healthy = True
        while waiting:
            try:
                msg = pool.result_q.get(timeout=0.05)
            except queue.Empty:
                now = time.monotonic()
                if not dead_seen and pool.any_dead():
                    # The dead worker's in-flight task will never come;
                    # give the survivors a short grace, then restart.
                    deadline = min(deadline, now + _DEAD_WORKER_GRACE)
                    dead_seen = True
                if now >= deadline:
                    healthy = False
                    self.failure_reason = self.failure_reason or (
                        "worker died mid-task" if dead_seen
                        else f"no progress within {self.task_timeout}s"
                    )
                    break
                continue
            key, success, payload, wid, elapsed, kstats, meta = msg
            if meta is not None and "clock" in meta:
                # Offset sample: the worker stamped its perf_counter at
                # send time; queue latency only makes the receive-side
                # difference larger, so the per-pid minimum converges on
                # the true clock offset.
                off = time.perf_counter() - meta["clock"]
                pid = int(meta["pid"])
                prev = self._clock_offsets.get(pid)
                self._clock_offsets[pid] = (
                    off if prev is None else min(prev, off)
                )
            if meta is not None and (
                meta.get("spans") or meta.get("dropped")
            ):
                lane_metas.append((wid, meta))
            if key == "init-error":
                healthy = False
                self.failure_reason = f"worker init failed: {payload}"
                break
            if key == "init-ok":
                continue
            if key not in waiting:
                continue
            waiting.discard(key)
            deadline = time.monotonic() + self.task_timeout
            if success:
                ok[key] = (payload, wid, elapsed, kstats)
            else:
                failures.append((key, payload))
        return ok, failures, healthy, lane_metas

    # -- pool lifecycle ------------------------------------------------

    def _restart(self) -> bool:
        if self._restarts_left <= 0:
            self.failure_reason = (
                self.failure_reason or "pool restart budget exhausted"
            )
            return False
        self._restarts_left -= 1
        self.counters["restarts"] += 1
        try:
            self._pool = _Pool(self._ctx, self.workers, self._init_bytes)
            return True
        except Exception as exc:
            self.failure_reason = f"pool restart failed: {exc!r}"
            self._pool = None
            return False

    def _teardown_pool(self, force: bool = False) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(force=force)

    def close(self) -> None:
        """Shut the pool down (sentinels, join, terminate stragglers)
        and release the wire cache's pinned nodes."""
        self._teardown_pool(force=False)
        self._drop_wire_cache()

    def stats_snapshot(self) -> dict:
        out = dict(self.counters)
        out["workers"] = self.workers
        out["broken"] = self.broken
        out["failure_reason"] = self.failure_reason
        return out
