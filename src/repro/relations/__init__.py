"""The Jedd relational runtime: typed relations over decision diagrams.

This package is the reproduction of the Jedd runtime library (paper
sections 2 and 4): domains, attributes, physical domains, the relation
data type with its full operation set, pluggable BDD/ZDD backends, and
reference-count-managing containers.
"""

from repro.relations.backend import (
    BDDBackend,
    DiagramBackend,
    MultiTerminalBackend,
    PipelineStep,
    UnsupportedByBackend,
    ZDDBackend,
    make_backend,
)
from repro.relations.containers import RelationContainer
from repro.relations.domain import (
    Attribute,
    Domain,
    JeddError,
    PhysicalDomain,
    RelationScope,
    Universe,
    open_universe,
)
from repro.relations.io import (
    load_checkpoint,
    load_checkpoint_binary,
    load_tsv,
    load_universe,
    save_checkpoint,
    save_checkpoint_binary,
    save_tsv,
    save_universe,
)
from repro.relations.relation import (
    AGGREGATE_OPS,
    CsvFormatError,
    Relation,
    Schema,
    WeightedRelation,
)
from repro.relations import ir
from repro.relations.fixpoint import (
    Atom,
    FixpointEngine,
    Rule,
    eval_rule_body,
    execute_rule_plan,
)
from repro.relations.policy import ExecutionPolicy
from repro.relations.parallel import ParallelExecutor

__all__ = [
    "AGGREGATE_OPS",
    "Atom",
    "ParallelExecutor",
    "eval_rule_body",
    "execute_rule_plan",
    "ir",
    "load_checkpoint_binary",
    "save_checkpoint_binary",
    "Attribute",
    "BDDBackend",
    "CsvFormatError",
    "DiagramBackend",
    "Domain",
    "ExecutionPolicy",
    "FixpointEngine",
    "JeddError",
    "MultiTerminalBackend",
    "PhysicalDomain",
    "PipelineStep",
    "Relation",
    "RelationContainer",
    "RelationScope",
    "Rule",
    "Schema",
    "Universe",
    "UnsupportedByBackend",
    "WeightedRelation",
    "ZDDBackend",
    "load_checkpoint",
    "load_tsv",
    "load_universe",
    "open_universe",
    "save_checkpoint",
    "save_tsv",
    "save_universe",
    "make_backend",
]
