"""The Jedd relational runtime: typed relations over decision diagrams.

This package is the reproduction of the Jedd runtime library (paper
sections 2 and 4): domains, attributes, physical domains, the relation
data type with its full operation set, pluggable BDD/ZDD backends, and
reference-count-managing containers.
"""

from repro.relations.backend import (
    BDDBackend,
    DiagramBackend,
    UnsupportedByBackend,
    ZDDBackend,
    make_backend,
)
from repro.relations.containers import RelationContainer
from repro.relations.domain import Attribute, Domain, JeddError, PhysicalDomain, Universe
from repro.relations.io import load_checkpoint, load_tsv, save_checkpoint, save_tsv
from repro.relations.relation import Relation, Schema

__all__ = [
    "Attribute",
    "BDDBackend",
    "DiagramBackend",
    "Domain",
    "JeddError",
    "PhysicalDomain",
    "Relation",
    "RelationContainer",
    "Schema",
    "Universe",
    "UnsupportedByBackend",
    "ZDDBackend",
    "load_checkpoint",
    "load_tsv",
    "save_checkpoint",
    "save_tsv",
    "make_backend",
]
