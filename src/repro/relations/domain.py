"""Domains, attributes, physical domains, and the universe (section 2.1).

The paper's Jedd programs define three kinds of named entities by
implementing runtime interfaces:

- ``jedd.Domain`` -- a set of Java objects (all types, all methods, ...)
  with a maximum size and an object<->integer mapping,
- ``jedd.Attribute`` -- a named column of a relation, drawing its values
  from a domain,
- ``jedd.PhysicalDomain`` -- a group of BDD variables (bit positions)
  that can store one attribute of a relation.

Here the same roles are played by :class:`Domain`, :class:`Attribute`
and :class:`PhysicalDomain`, registered in a :class:`Universe`.  The
universe also owns the decision-diagram manager and fixes the *relative
bit ordering* of the physical domains (user-specified in the paper;
``interleaved`` or ``sequential`` here), which together with the
attribute->physical-domain assignment determines BDD variable order and
hence performance.
"""

from __future__ import annotations

import os

from typing import (
    Any,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.bdd import BDDManager, ZDDManager
from repro.relations.backend import _backend_for

__all__ = [
    "Domain",
    "Attribute",
    "PhysicalDomain",
    "RelationScope",
    "Universe",
    "JeddError",
    "open_universe",
]


class JeddError(Exception):
    """Runtime error in the relational layer (the paper's dynamic checks)."""


def _bits_for(size: int) -> int:
    """Bits needed to encode ``size`` distinct objects (at least 1)."""
    if size < 1:
        raise JeddError("domain size must be at least 1")
    return max(1, (size - 1).bit_length())


class Domain:
    """A finite set of objects with an object<->integer mapping.

    Objects are *interned* on first use; the integer associated with an
    object encodes it in BDD bits.  ``max_size`` bounds how many objects
    the domain may ever hold (it determines the bit width needed).
    """

    def __init__(self, name: str, max_size: int) -> None:
        self.name = name
        self.max_size = max_size
        self.bits = _bits_for(max_size)
        self._to_int: Dict[Hashable, int] = {}
        self._to_obj: List[Hashable] = []

    def intern(self, obj: Hashable) -> int:
        """Return (assigning if new) the integer encoding of ``obj``."""
        idx = self._to_int.get(obj)
        if idx is not None:
            return idx
        if len(self._to_obj) >= self.max_size:
            raise JeddError(
                f"domain {self.name!r} overflow (max_size={self.max_size})"
            )
        idx = len(self._to_obj)
        self._to_int[obj] = idx
        self._to_obj.append(obj)
        return idx

    def index_of(self, obj: Hashable) -> int:
        """The integer of an already-interned object."""
        try:
            return self._to_int[obj]
        except KeyError:
            raise JeddError(
                f"object {obj!r} not in domain {self.name!r}"
            ) from None

    def object_of(self, idx: int) -> Hashable:
        """The object encoded by integer ``idx``."""
        if not 0 <= idx < len(self._to_obj):
            raise JeddError(
                f"index {idx} not interned in domain {self.name!r}"
            )
        return self._to_obj[idx]

    def __contains__(self, obj: Hashable) -> bool:
        return obj in self._to_int

    def __len__(self) -> int:
        return len(self._to_obj)

    def values(self) -> List[int]:
        """All interned integer encodings."""
        return list(range(len(self._to_obj)))

    def __repr__(self) -> str:
        return f"Domain({self.name!r}, max_size={self.max_size})"


class Attribute:
    """A named relation column over a :class:`Domain`."""

    def __init__(self, name: str, domain: Domain) -> None:
        self.name = name
        self.domain = domain

    def __repr__(self) -> str:
        return f"Attribute({self.name!r}: {self.domain.name})"


class PhysicalDomain:
    """A named group of decision-diagram bit positions.

    ``levels`` (filled in by :meth:`Universe.finalize`) lists the manager
    level of each bit, index 0 being the least significant bit.
    """

    def __init__(self, name: str, bits: int) -> None:
        if bits < 1:
            raise JeddError("physical domain needs at least 1 bit")
        self.name = name
        self.bits = bits
        self.levels: Optional[List[int]] = None

    def __repr__(self) -> str:
        return f"PhysicalDomain({self.name!r}, bits={self.bits})"


class Universe:
    """Registry of domains/attributes/physical domains plus the manager.

    Typical use::

        u = Universe()
        type_dom = u.domain("Type", 1024)
        rectype = u.attribute("rectype", type_dom)
        t1 = u.physical_domain("T1", type_dom.bits)
        u.finalize()           # fixes bit ordering, creates the manager

    ``ordering`` selects the relative bit order of physical domains:
    ``"interleaved"`` (bit i of every domain adjacent -- the usual choice
    for points-to-style analyses) or ``"sequential"`` (one block per
    physical domain).

    ``kernel`` selects the BDD kernel implementation: ``"reference"``
    (the recursive manager in :mod:`repro.bdd.manager`), ``"arena"``
    (the vectorized struct-of-arrays kernel in :mod:`repro.bdd.arena`)
    or ``"ooc"`` (the out-of-core streaming kernel in
    :mod:`repro.bdd.ooc`, configured via ``JEDD_OOC_CAP_BYTES`` /
    ``JEDD_OOC_SPILL_DIR``; see ``docs/KERNEL.md``).  When omitted,
    the ``JEDD_KERNEL`` environment variable decides, defaulting to
    ``"reference"``.  The kernel flag only affects the ``"bdd"``
    backend; all kernels build bit-identical canonical diagrams.
    """

    def __init__(
        self,
        backend: str = "bdd",
        ordering: str = "interleaved",
        kernel: Optional[str] = None,
    ) -> None:
        if ordering not in ("interleaved", "sequential"):
            raise JeddError(f"unknown ordering {ordering!r}")
        if backend not in ("bdd", "zdd", "mtbdd"):
            raise JeddError(f"unknown backend {backend!r}")
        if kernel is None:
            kernel = os.environ.get("JEDD_KERNEL", "reference")
        if kernel not in ("reference", "arena", "ooc"):
            raise JeddError(f"unknown kernel {kernel!r}")
        self.backend_name = backend
        self.kernel_name = kernel
        self.ordering = ordering
        self._domains: Dict[str, Domain] = {}
        self._attributes: Dict[str, Attribute] = {}
        self._physdoms: Dict[str, PhysicalDomain] = {}
        self._physdom_order: List[PhysicalDomain] = []
        self._bit_order_groups: Optional[List[List[str]]] = None
        self.manager: Optional[BDDManager | ZDDManager] = None
        self._scratch_counter = 0
        self._scopes: List["RelationScope"] = []
        self._plan_epoch = 0

    def set_bit_order(self, groups: List[List[str]]) -> None:
        """Fix the relative bit ordering of the physical domains.

        The paper leaves the relative bit ordering of physical domains
        to the user (section 3.2.1): it determines BDD sizes and hence
        performance.  ``groups`` is a list of physical-domain-name
        groups; domains within a group have their bits interleaved
        (good for relations that pair them, e.g. the two variable
        domains of an assignment edge), and groups are laid out one
        after another.  Every declared physical domain must appear in
        exactly one group.  Call before :meth:`finalize`.
        """
        if self.finalized:
            raise JeddError("set_bit_order() must precede finalize()")
        seen: List[str] = []
        for group in groups:
            for name in group:
                if name not in self._physdoms:
                    raise JeddError(f"unknown physical domain {name!r}")
                seen.append(name)
        if sorted(seen) != sorted(self._physdoms):
            missing = set(self._physdoms) - set(seen)
            dupes = {n for n in seen if seen.count(n) > 1}
            raise JeddError(
                "bit order must mention every physical domain exactly "
                f"once (missing: {sorted(missing)}, duplicated: "
                f"{sorted(dupes)})"
            )
        self._bit_order_groups = [list(g) for g in groups]

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    @property
    def finalized(self) -> bool:
        """Whether finalize() has run (manager exists, levels fixed)."""
        return self.manager is not None

    def domain(self, name: str, max_size: int) -> Domain:
        """Declare (or fetch, if sizes agree) a domain."""
        existing = self._domains.get(name)
        if existing is not None:
            if existing.max_size != max_size:
                raise JeddError(
                    f"domain {name!r} redeclared with different size"
                )
            return existing
        dom = Domain(name, max_size)
        self._domains[name] = dom
        return dom

    def attribute(self, name: str, domain: Domain) -> Attribute:
        """Declare (or fetch) an attribute over ``domain``."""
        existing = self._attributes.get(name)
        if existing is not None:
            if existing.domain is not domain:
                raise JeddError(
                    f"attribute {name!r} redeclared over a different domain"
                )
            return existing
        attr = Attribute(name, domain)
        self._attributes[name] = attr
        return attr

    def physical_domain(self, name: str, bits: int) -> PhysicalDomain:
        """Declare (or fetch) a physical domain of ``bits`` positions."""
        existing = self._physdoms.get(name)
        if existing is not None:
            if existing.bits != bits:
                raise JeddError(
                    f"physical domain {name!r} redeclared with different bits"
                )
            return existing
        if self.finalized:
            raise JeddError(
                "cannot declare physical domains after finalize(); "
                "use scratch_physdom()"
            )
        pd = PhysicalDomain(name, bits)
        self._physdoms[name] = pd
        self._physdom_order.append(pd)
        return pd

    def get_domain(self, name: str) -> Domain:
        """Look up a declared domain by name."""
        try:
            return self._domains[name]
        except KeyError:
            raise JeddError(f"unknown domain {name!r}") from None

    def get_attribute(self, name: str) -> Attribute:
        """Look up a declared attribute by name."""
        try:
            return self._attributes[name]
        except KeyError:
            raise JeddError(f"unknown attribute {name!r}") from None

    def get_physdom(self, name: str) -> PhysicalDomain:
        """Look up a declared physical domain by name."""
        try:
            return self._physdoms[name]
        except KeyError:
            raise JeddError(f"unknown physical domain {name!r}") from None

    def physical_domains(self) -> List[PhysicalDomain]:
        """All physical domains in declaration order."""
        return list(self._physdom_order)

    # ------------------------------------------------------------------
    # Finalization: bit ordering and manager creation
    # ------------------------------------------------------------------

    def finalize(self) -> None:
        """Fix the bit ordering and create the decision-diagram manager."""
        if self.finalized:
            raise JeddError("universe already finalized")
        total_bits = sum(pd.bits for pd in self._physdom_order)
        next_level = 0
        if self._bit_order_groups is not None:
            # User-specified grouping: interleave within each group,
            # lay groups out sequentially.
            for group in self._bit_order_groups:
                pds = [self._physdoms[name] for name in group]
                for pd in pds:
                    pd.levels = [0] * pd.bits
                max_bits = max(pd.bits for pd in pds)
                for i in range(max_bits):
                    for pd in pds:
                        if i < pd.bits:
                            pd.levels[pd.bits - 1 - i] = next_level
                            next_level += 1
        elif self.ordering == "interleaved":
            # Round-robin most-significant-first: bit i of each physical
            # domain sits adjacent to bit i of the others.
            max_bits = max(
                (pd.bits for pd in self._physdom_order), default=0
            )
            for pd in self._physdom_order:
                pd.levels = [0] * pd.bits
            for i in range(max_bits):
                for pd in self._physdom_order:
                    if i < pd.bits:
                        # Most significant bit (index bits-1) on top.
                        pd.levels[pd.bits - 1 - i] = next_level
                        next_level += 1
        else:  # sequential
            for pd in self._physdom_order:
                pd.levels = [0] * pd.bits
                for i in range(pd.bits):
                    pd.levels[pd.bits - 1 - i] = next_level
                    next_level += 1
        assert next_level == total_bits
        if self.backend_name == "bdd":
            if self.kernel_name == "arena":
                from repro.bdd.arena import ArenaBDDManager

                self.manager = ArenaBDDManager(total_bits)
            elif self.kernel_name == "ooc":
                from repro.bdd.ooc import OocBDDManager

                self.manager = OocBDDManager(total_bits)
            else:
                self.manager = BDDManager(total_bits)
        elif self.backend_name == "mtbdd":
            from repro.bdd.mtbdd import MTBDDManager

            self.manager = MTBDDManager(total_bits)
        else:
            self.manager = ZDDManager(total_bits)

    def scratch_physdom(self, bits: int) -> PhysicalDomain:
        """Allocate a fresh physical domain after finalization.

        Used by the runtime's auto-alignment when an operation needs an
        attribute moved out of the way and no declared physical domain is
        free.  New bits are appended below all existing levels.
        """
        if not self.finalized:
            raise JeddError("finalize() before allocating scratch domains")
        self._scratch_counter += 1
        name = f"__scratch{self._scratch_counter}"
        pd = PhysicalDomain(name, bits)
        base = self.manager.num_vars
        self.manager.add_vars(bits)
        pd.levels = [base + (bits - 1 - i) for i in range(bits)]
        self._physdoms[name] = pd
        self._physdom_order.append(pd)
        return pd

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path, relations=None) -> int:
        """Checkpoint this universe (and named relations) to ``path``.

        ``relations`` maps names to :class:`Relation` values of this
        universe; omit it to save the declarations alone.  The file is
        self-contained — :meth:`Universe.load` rebuilds everything with
        no prior declarations.  Returns the bytes written.  See
        :func:`repro.relations.io.save_universe` for the format.
        """
        from repro.relations.io import save_universe

        with open(path, "wb") as fp:
            return save_universe(self, relations or {}, fp)

    @staticmethod
    def load(path):
        """Restore a checkpoint written by :meth:`save`.

        Returns ``(universe, relations)`` where ``relations`` is a dict
        of the named relations the file carries.  Fails loudly on files
        written by a newer, incompatible layout version.
        """
        from repro.relations.io import load_universe

        with open(path, "rb") as fp:
            return load_universe(fp)

    # ------------------------------------------------------------------
    # Dynamic variable reordering
    # ------------------------------------------------------------------

    def physdom_groups(self) -> List[List[int]]:
        """The bit positions of each physical domain, as sift groups.

        The SAT-driven domain assignment (section 3.3) decides *which*
        physical domain stores each attribute; keeping a domain's bits
        together while reordering preserves that structure, so these are
        the default blocks for group sifting.  Includes scratch domains.
        """
        if not self.finalized:
            raise JeddError("finalize() before reordering")
        return [
            list(pd.levels)
            for pd in self._physdom_order
            if pd.levels is not None
        ]

    def enable_reorder(
        self,
        threshold: Optional[int] = None,
        max_growth: Optional[float] = None,
        group_by_physdom: bool = True,
    ) -> None:
        """Enable automatic sifting when the node table grows.

        With ``group_by_physdom`` (the default) the bits of one physical
        domain move as a block, so the user-specified relative bit
        ordering within each domain survives; pass False to let every
        bit sift independently (can find better orders, but decouples
        bits the encodings correlate).  Raises
        :class:`~repro.relations.backend.UnsupportedByBackend` on the
        ZDD backend.
        """
        if not self.finalized:
            raise JeddError("finalize() before enabling reordering")
        _backend_for(self.manager).enable_reorder(
            threshold=threshold, max_growth=max_growth
        )
        # Set (or clear) the group policy explicitly so toggling
        # group_by_physdom across calls behaves as written.
        self.manager.reorder_groups = (
            self.physdom_groups if group_by_physdom else None
        )

    def disable_reorder(self):
        """Context manager suppressing automatic reordering (no-op on
        backends without reordering)."""
        if not self.finalized:
            raise JeddError("finalize() before disabling reordering")
        return _backend_for(self.manager).disable_reorder()

    def reorder(self, groups=None, max_growth: Optional[float] = None):
        """Run one reordering pass now; returns the ``ReorderEvent``."""
        if not self.finalized:
            raise JeddError("finalize() before reordering")
        return _backend_for(self.manager).reorder(
            groups=groups, max_growth=max_growth
        )

    # ------------------------------------------------------------------
    # Plan cache generations
    # ------------------------------------------------------------------

    @property
    def plan_generation(self) -> int:
        """Cache generation for the query planner (``repro.relations.ir``).

        Cached plans are keyed by (shape, generation): the generation
        advances with every dynamic reordering pass — node-count
        estimates predating a reorder are stale — and with every
        explicit :meth:`invalidate_plans` call.
        """
        gen = self._plan_epoch
        if self.manager is not None:
            gen += self.manager.stats.reorder_runs
        return gen

    def invalidate_plans(self) -> None:
        """Force re-planning: bump the generation every cached query
        plan is keyed under (e.g. after bulk-loading relations whose
        sizes bear no resemblance to what the planner saw)."""
        self._plan_epoch += 1

    # ------------------------------------------------------------------
    # Encoding helpers
    # ------------------------------------------------------------------

    def encode_bits(
        self, pd: PhysicalDomain, value: int
    ) -> Dict[int, bool]:
        """``{level: bit}`` assignment storing ``value`` in ``pd``."""
        if pd.levels is None:
            raise JeddError(f"universe not finalized for {pd.name}")
        if value >= (1 << pd.bits):
            raise JeddError(
                f"value {value} does not fit in physical domain "
                f"{pd.name} ({pd.bits} bits)"
            )
        return {pd.levels[j]: bool(value >> j & 1) for j in range(pd.bits)}

    def decode_bits(
        self, pd: PhysicalDomain, assignment: Dict[int, bool]
    ) -> int:
        """Inverse of :meth:`encode_bits` over a complete assignment."""
        value = 0
        for j in range(pd.bits):
            if assignment[pd.levels[j]]:
                value |= 1 << j
        return value

    def move_permutation(
        self, moves: Iterable[Tuple[PhysicalDomain, PhysicalDomain]]
    ) -> Dict[int, int]:
        """Level permutation moving each source domain onto its target."""
        perm: Dict[int, int] = {}
        for src, dst in moves:
            if src is dst:
                continue
            if src.bits != dst.bits:
                raise JeddError(
                    f"cannot move {src.name} ({src.bits} bits) to "
                    f"{dst.name} ({dst.bits} bits): width mismatch"
                )
            for j in range(src.bits):
                perm[src.levels[j]] = dst.levels[j]
        return perm

    # ------------------------------------------------------------------
    # Relation lifetimes and construction
    # ------------------------------------------------------------------

    def scope(self) -> "RelationScope":
        """Open a relation lifetime scope.

        Every relation created in this universe while the scope is
        active is disposed (its diagram reference dropped) when the
        scope exits, except those passed to
        :meth:`RelationScope.keep`::

            with u.scope() as sc:
                temp = a.join(b, ["x"], ["x"])
                result = sc.keep(temp.project_away("x"))
            # temp is disposed here; result survives

        Scopes nest: relations register with the innermost active
        scope.  This replaces the manual ``Relation.release()``
        protocol.
        """
        return RelationScope(self)

    def _note_relation(self, rel) -> None:
        """Register a newly created relation with the innermost scope."""
        if self._scopes:
            self._scopes[-1]._track(rel)

    def empty(self, attributes, physdoms=None):
        """An empty relation over the named attributes (see
        :meth:`Relation.empty`)."""
        from repro.relations.relation import Relation

        return Relation.empty(self, attributes, physdoms)

    def full(self, attributes, physdoms=None):
        """The full relation over the named attributes."""
        from repro.relations.relation import Relation

        return Relation.full(self, attributes, physdoms)

    def relation(self, values, physdoms=None):
        """A one-tuple relation from an ``{attribute: object}`` mapping."""
        from repro.relations.relation import Relation

        return Relation.from_tuple(self, values, physdoms)

    def relation_of(self, attributes, rows, physdoms=None):
        """A relation from an iterable of tuples (see
        :meth:`Relation.from_tuples`)."""
        from repro.relations.relation import Relation

        return Relation.from_tuples(self, attributes, rows, physdoms)


class RelationScope:
    """Bulk lifetime management for relations (``Universe.scope()``).

    Tracks every relation created in the universe while active; on exit
    each tracked relation is disposed unless it was passed to
    :meth:`keep`.  Disposal only drops diagram references — the next
    garbage collection reclaims the nodes.
    """

    def __init__(self, universe: Universe) -> None:
        self.universe = universe
        self._tracked: List[Any] = []
        self._kept: set = set()

    def _track(self, rel) -> None:
        self._tracked.append(rel)

    def keep(self, rel):
        """Exempt ``rel`` from disposal at scope exit; returns it."""
        self._kept.add(id(rel))
        return rel

    def __enter__(self) -> "RelationScope":
        self.universe._scopes.append(self)
        return self

    def __exit__(self, *exc) -> bool:
        stack = self.universe._scopes
        if self in stack:
            stack.remove(self)
        for rel in self._tracked:
            if id(rel) not in self._kept:
                rel.dispose()
        self._tracked.clear()
        self._kept.clear()
        return False


def open_universe(
    backend: str = "bdd",
    order: str = "interleaved",
    *,
    kernel: Optional[str] = None,
    domains: Optional[Dict[str, int]] = None,
    attributes: Optional[Dict[str, str]] = None,
    physdoms: Optional[Dict[str, int]] = None,
    bit_order: Optional[Sequence[Sequence[str]]] = None,
    finalize: Optional[bool] = None,
) -> Universe:
    """One-stop factory for a configured universe.

    Unifies the previously scattered entry points (``make_backend``,
    ``Universe(...)``, per-relation constructors)::

        u = open_universe(
            backend="bdd",
            domains={"Var": 64, "Obj": 64},
            attributes={"var": "Var", "obj": "Obj"},
            physdoms={"V1": 6, "H1": 6},
        )
        pt = u.empty(["var", "obj"], ["V1", "H1"])

    ``domains`` maps name -> max size; ``attributes`` maps name ->
    domain name; ``physdoms`` maps name -> bit width; ``bit_order``
    optionally fixes the relative bit ordering (groups of physical
    domain names, as for :meth:`Universe.set_bit_order`).  The universe
    is finalized automatically when any physical domains were declared
    (override with ``finalize=``); declare-then-finalize manually for
    more complex setups.  ``kernel`` picks the BDD kernel
    (``"reference"``, ``"arena"`` or ``"ooc"``; default from
    ``JEDD_KERNEL``).
    """
    u = Universe(backend=backend, ordering=order, kernel=kernel)
    for name, size in (domains or {}).items():
        u.domain(name, size)
    for name, dom_name in (attributes or {}).items():
        u.attribute(name, u.get_domain(dom_name))
    for name, bits in (physdoms or {}).items():
        u.physical_domain(name, bits)
    if bit_order is not None:
        u.set_bit_order([list(g) for g in bit_order])
    if finalize is None:
        finalize = bool(physdoms)
    if finalize:
        u.finalize()
    return u
