"""Relation persistence: TSV tuples and raw diagram checkpoints.

Three granularities, matching how analyses persist state:

- :func:`save_tsv` / :func:`load_tsv` -- portable, human-readable tuple
  dumps (works across universes and backends; objects are strings);
- :func:`save_checkpoint` / :func:`load_checkpoint` -- the raw decision
  diagram plus its schema, restored into the *same* universe layout
  (the BuDDy ``bdd_save`` workflow for expensive intermediate results);
- :func:`save_universe` / :func:`load_universe` -- a whole universe
  (declarations, interned objects, bit order) together with any number
  of named relations, restorable with nothing but the file.  This is
  the checkpoint format of the analysis service
  (:mod:`repro.service`); the friendly entry points are
  :meth:`Universe.save` and :meth:`Universe.load`.

The universe container is the ``JDDU`` format: magic, a version byte
(``0x80 | UNIVERSE_VERSION`` — readers refuse versions they do not
understand instead of guessing at the layout), a JSON header with the
declarations, then one length-prefixed binary relation checkpoint per
named relation (each itself carrying the versioned ``JDDB`` diagram
encoding).  Multi-terminal universes add a ``terminals`` tag to the
header naming the terminal domain (``"numeric"``) and are written at
container version 2; boolean universes keep the version-1 layout
byte-for-byte.
"""

from __future__ import annotations

import json
from typing import BinaryIO, Dict, List, Mapping, Optional, Sequence, TextIO, Tuple

from repro.bdd.io import (
    dumps_diagram,
    dumps_diagram_binary,
    loads_diagram,
    loads_diagram_binary,
)
from repro.relations.domain import JeddError, Universe
from repro.relations.relation import Relation, WeightedRelation

__all__ = [
    "save_tsv",
    "load_tsv",
    "save_checkpoint",
    "load_checkpoint",
    "save_checkpoint_binary",
    "load_checkpoint_binary",
    "save_universe",
    "load_universe",
    "UNIVERSE_MAGIC",
    "UNIVERSE_VERSION",
    "WEIGHTED_UNIVERSE_VERSION",
    "MAX_UNIVERSE_VERSION",
]

#: Magic prefix of the universe container format.
UNIVERSE_MAGIC = b"JDDU"

#: Version of the universe container layout this build writes for
#: boolean universes.  The layout is unchanged since version 1, so
#: boolean checkpoints stay byte-identical across builds.
UNIVERSE_VERSION = 1

#: Container version for multi-terminal (weighted) universes: their
#: header carries a ``terminals`` tag and their relation diagrams use
#: the kind-2 ``JDDB`` layout, neither of which version-1 readers
#: defined.
WEIGHTED_UNIVERSE_VERSION = 2

#: Highest container version this reader understands.
MAX_UNIVERSE_VERSION = 2

#: Terminal-domain tags a version-2 header may carry.
_TERMINAL_TAGS = ("boolean", "numeric")


def save_tsv(relation: Relation, fp: TextIO) -> int:
    """Write ``relation`` as a header line plus one tuple per line."""
    names = relation.schema.names()
    fp.write("\t".join(names) + "\n")
    count = 0
    for row in relation.tuples():
        fp.write("\t".join(str(value) for value in row) + "\n")
        count += 1
    return count


def load_tsv(
    universe: Universe,
    fp: TextIO,
    physdoms: Optional[Sequence[str]] = None,
) -> Relation:
    """Read a TSV written by :func:`save_tsv` into ``universe``.

    The header names the attributes; objects load as strings.
    """
    lines = [line.rstrip("\n") for line in fp if line.strip()]
    if not lines:
        raise JeddError("empty TSV relation file")
    attrs = lines[0].split("\t")
    rows: List[tuple] = []
    for line in lines[1:]:
        row = tuple(line.split("\t"))
        if len(row) != len(attrs):
            raise JeddError(f"TSV row arity mismatch: {line!r}")
        rows.append(row)
    return Relation.from_tuples(universe, attrs, rows, physdoms)


def save_checkpoint(relation: Relation, fp: TextIO) -> None:
    """Persist the schema and the raw diagram of ``relation``."""
    header = " ".join(
        f"{attr.name}:{pd.name}" for attr, pd in relation.schema.pairs
    )
    fp.write(f"schema {header}\n")
    fp.write(dumps_diagram(relation.universe.manager, relation.node))


def load_checkpoint(universe: Universe, fp: TextIO) -> Relation:
    """Restore a checkpoint into a universe with the same declarations.

    Attribute and physical-domain names must exist in ``universe`` and
    the physical domains must occupy the same bit levels as when saved
    (i.e. the universe was built by the same declaration sequence).
    """
    text = fp.read()
    first, _, rest = text.partition("\n")
    if not first.startswith("schema "):
        raise JeddError("missing checkpoint schema header")
    pairs = []
    for spec in first[len("schema "):].split():
        attr_name, _, pd_name = spec.partition(":")
        pairs.append(
            (universe.get_attribute(attr_name), universe.get_physdom(pd_name))
        )
    node = loads_diagram(universe.manager, rest)
    from repro.relations.relation import Schema

    return Relation(universe, Schema(pairs), node)


def save_checkpoint_binary(relation: Relation, fp: BinaryIO) -> int:
    """:func:`save_checkpoint` in the compact binary wire format.

    A UTF-8 schema header line, then the binary diagram from
    :func:`repro.bdd.io.dumps_diagram_binary` — the same encoding the
    parallel fixpoint executor uses to ship relations between
    processes.  Returns the number of bytes written.
    """
    header = " ".join(
        f"{attr.name}:{pd.name}" for attr, pd in relation.schema.pairs
    )
    data = f"schema {header}\n".encode("utf-8")
    data += dumps_diagram_binary(relation.universe.manager, relation.node)
    fp.write(data)
    return len(data)


def load_checkpoint_binary(universe: Universe, fp: BinaryIO) -> Relation:
    """Restore a binary checkpoint (see :func:`load_checkpoint` for the
    universe-compatibility requirements)."""
    blob = fp.read()
    first, sep, rest = blob.partition(b"\n")
    if not sep or not first.startswith(b"schema "):
        raise JeddError("missing checkpoint schema header")
    pairs = []
    for spec in first.decode("utf-8")[len("schema "):].split():
        attr_name, _, pd_name = spec.partition(":")
        pairs.append(
            (universe.get_attribute(attr_name), universe.get_physdom(pd_name))
        )
    node = loads_diagram_binary(universe.manager, rest)
    from repro.relations.relation import Schema

    return Relation(universe, Schema(pairs), node)


# ----------------------------------------------------------------------
# Universe container (JDDU)
# ----------------------------------------------------------------------


def _write_uvarint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_uvarint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise JeddError("truncated universe checkpoint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise JeddError("oversized varint in universe checkpoint")


def _check_json_objects(name: str, objects: List[object]) -> None:
    for obj in objects:
        if not isinstance(obj, (str, int, float, bool, type(None))):
            raise JeddError(
                f"domain {name!r} interns {type(obj).__name__} objects; "
                "universe checkpoints only support JSON-scalar domain "
                "objects (str, int, float, bool, None)"
            )


def save_universe(
    universe: Universe,
    relations: Mapping[str, Relation],
    fp: BinaryIO,
) -> int:
    """Write a self-contained checkpoint of ``universe`` plus the named
    ``relations`` to an open binary file; returns the bytes written.

    Unlike the per-relation checkpoints, loading needs no pre-built
    universe: declarations, interned domain objects, and the bit order
    all travel in the file.  Domain objects must be JSON scalars.
    """
    if not universe.finalized:
        raise JeddError("save_universe: finalize() the universe first")
    for name, rel in relations.items():
        if isinstance(rel, WeightedRelation):
            # Aggregate results are derived artifacts (often
            # table-backed, with no diagram to checkpoint); recompute
            # them after load instead of persisting them.
            raise JeddError(
                f"save_universe: {name!r} is a weighted aggregate "
                "result and cannot be checkpointed; drop it or "
                "recompute it after load"
            )
        if rel.universe is not universe:
            raise JeddError(
                f"save_universe: relation {name!r} belongs to a "
                "different universe"
            )
    domains = []
    for dom_name, dom in universe._domains.items():
        objects = list(dom._to_obj)
        _check_json_objects(dom_name, objects)
        domains.append([dom_name, dom.max_size, objects])
    # Scratch physical domains are appended after finalize() with their
    # own level layout, so they replay through scratch_physdom() on load
    # instead of being declared up front.
    physdoms = []
    scratch = []
    for pd in universe._physdom_order:
        if pd.name.startswith("__scratch"):
            scratch.append([pd.name, pd.bits])
        else:
            physdoms.append([pd.name, pd.bits])
    weighted = universe.backend_name == "mtbdd"
    header = {
        "backend": universe.backend_name,
        "ordering": universe.ordering,
        "kernel": universe.kernel_name,
        "domains": domains,
        "attributes": [
            [a.name, a.domain.name]
            for a in universe._attributes.values()
        ],
        "physdoms": physdoms,
        "scratch": scratch,
        "bit_order": universe._bit_order_groups,
        "relations": list(relations),
    }
    if weighted:
        header["terminals"] = "numeric"
    out = bytearray(UNIVERSE_MAGIC)
    out.append(
        0x80 | (WEIGHTED_UNIVERSE_VERSION if weighted else UNIVERSE_VERSION)
    )
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    _write_uvarint(out, len(header_bytes))
    out += header_bytes
    import io as _io

    for name, rel in relations.items():
        buf = _io.BytesIO()
        save_checkpoint_binary(rel, buf)
        blob = buf.getvalue()
        _write_uvarint(out, len(blob))
        out += blob
    fp.write(bytes(out))
    return len(out)


def load_universe(fp: BinaryIO) -> Tuple[Universe, Dict[str, Relation]]:
    """Rebuild a universe (and its named relations) from a checkpoint
    written by :func:`save_universe`.

    Fails loudly on unknown magic and on container versions newer than
    this reader (see ``UNIVERSE_VERSION``).
    """
    data = fp.read()
    if len(data) < len(UNIVERSE_MAGIC) + 1:
        raise JeddError("truncated universe checkpoint")
    if data[: len(UNIVERSE_MAGIC)] != UNIVERSE_MAGIC:
        raise JeddError("bad universe checkpoint magic")
    version_byte = data[len(UNIVERSE_MAGIC)]
    if not version_byte & 0x80:
        raise JeddError("bad universe checkpoint version byte")
    version = version_byte & 0x7F
    if version > MAX_UNIVERSE_VERSION:
        raise JeddError(
            f"universe checkpoint has version {version}, this reader "
            f"understands up to {MAX_UNIVERSE_VERSION} "
            "(refusing to guess at the layout)"
        )
    pos = len(UNIVERSE_MAGIC) + 1
    header_len, pos = _read_uvarint(data, pos)
    if pos + header_len > len(data):
        raise JeddError("truncated universe checkpoint header")
    try:
        header = json.loads(data[pos : pos + header_len].decode("utf-8"))
    except ValueError as err:
        raise JeddError(f"bad universe checkpoint header: {err}") from None
    pos += header_len
    terminals = header.get("terminals", "boolean")
    if terminals not in _TERMINAL_TAGS:
        raise JeddError(
            f"universe checkpoint has unknown terminal-domain tag "
            f"{terminals!r} (this reader knows {_TERMINAL_TAGS}; "
            "refusing to guess at the semantics)"
        )
    if (terminals == "numeric") != (header["backend"] == "mtbdd"):
        raise JeddError(
            f"universe checkpoint terminal-domain tag {terminals!r} "
            f"does not fit backend {header['backend']!r}"
        )
    universe = Universe(
        backend=header["backend"],
        ordering=header["ordering"],
        kernel=header["kernel"],
    )
    for dom_name, max_size, objects in header["domains"]:
        dom = universe.domain(dom_name, max_size)
        for obj in objects:
            dom.intern(obj)
    for attr_name, dom_name in header["attributes"]:
        universe.attribute(attr_name, universe.get_domain(dom_name))
    for pd_name, bits in header["physdoms"]:
        universe.physical_domain(pd_name, bits)
    if header.get("bit_order"):
        universe.set_bit_order(header["bit_order"])
    universe.finalize()
    for pd_name, bits in header.get("scratch", []):
        pd = universe.scratch_physdom(bits)
        if pd.name != pd_name:
            raise JeddError(
                f"universe checkpoint scratch domain {pd_name!r} "
                f"replayed as {pd.name!r}"
            )
    import io as _io

    relations: Dict[str, Relation] = {}
    for name in header["relations"]:
        blob_len, pos = _read_uvarint(data, pos)
        if pos + blob_len > len(data):
            raise JeddError(
                f"truncated universe checkpoint relation {name!r}"
            )
        relations[name] = load_checkpoint_binary(
            universe, _io.BytesIO(data[pos : pos + blob_len])
        )
        pos += blob_len
    return universe, relations
