"""Relation persistence: TSV tuples and raw diagram checkpoints.

Two granularities, matching how analyses persist state:

- :func:`save_tsv` / :func:`load_tsv` -- portable, human-readable tuple
  dumps (works across universes and backends; objects are strings);
- :func:`save_checkpoint` / :func:`load_checkpoint` -- the raw decision
  diagram plus its schema, restored into the *same* universe layout
  (the BuDDy ``bdd_save`` workflow for expensive intermediate results).
"""

from __future__ import annotations

from typing import BinaryIO, List, Optional, Sequence, TextIO

from repro.bdd.io import (
    dumps_diagram,
    dumps_diagram_binary,
    loads_diagram,
    loads_diagram_binary,
)
from repro.relations.domain import JeddError, Universe
from repro.relations.relation import Relation

__all__ = [
    "save_tsv",
    "load_tsv",
    "save_checkpoint",
    "load_checkpoint",
    "save_checkpoint_binary",
    "load_checkpoint_binary",
]


def save_tsv(relation: Relation, fp: TextIO) -> int:
    """Write ``relation`` as a header line plus one tuple per line."""
    names = relation.schema.names()
    fp.write("\t".join(names) + "\n")
    count = 0
    for row in relation.tuples():
        fp.write("\t".join(str(value) for value in row) + "\n")
        count += 1
    return count


def load_tsv(
    universe: Universe,
    fp: TextIO,
    physdoms: Optional[Sequence[str]] = None,
) -> Relation:
    """Read a TSV written by :func:`save_tsv` into ``universe``.

    The header names the attributes; objects load as strings.
    """
    lines = [line.rstrip("\n") for line in fp if line.strip()]
    if not lines:
        raise JeddError("empty TSV relation file")
    attrs = lines[0].split("\t")
    rows: List[tuple] = []
    for line in lines[1:]:
        row = tuple(line.split("\t"))
        if len(row) != len(attrs):
            raise JeddError(f"TSV row arity mismatch: {line!r}")
        rows.append(row)
    return Relation.from_tuples(universe, attrs, rows, physdoms)


def save_checkpoint(relation: Relation, fp: TextIO) -> None:
    """Persist the schema and the raw diagram of ``relation``."""
    header = " ".join(
        f"{attr.name}:{pd.name}" for attr, pd in relation.schema.pairs
    )
    fp.write(f"schema {header}\n")
    fp.write(dumps_diagram(relation.universe.manager, relation.node))


def load_checkpoint(universe: Universe, fp: TextIO) -> Relation:
    """Restore a checkpoint into a universe with the same declarations.

    Attribute and physical-domain names must exist in ``universe`` and
    the physical domains must occupy the same bit levels as when saved
    (i.e. the universe was built by the same declaration sequence).
    """
    text = fp.read()
    first, _, rest = text.partition("\n")
    if not first.startswith("schema "):
        raise JeddError("missing checkpoint schema header")
    pairs = []
    for spec in first[len("schema "):].split():
        attr_name, _, pd_name = spec.partition(":")
        pairs.append(
            (universe.get_attribute(attr_name), universe.get_physdom(pd_name))
        )
    node = loads_diagram(universe.manager, rest)
    from repro.relations.relation import Schema

    return Relation(universe, Schema(pairs), node)


def save_checkpoint_binary(relation: Relation, fp: BinaryIO) -> int:
    """:func:`save_checkpoint` in the compact binary wire format.

    A UTF-8 schema header line, then the binary diagram from
    :func:`repro.bdd.io.dumps_diagram_binary` — the same encoding the
    parallel fixpoint executor uses to ship relations between
    processes.  Returns the number of bytes written.
    """
    header = " ".join(
        f"{attr.name}:{pd.name}" for attr, pd in relation.schema.pairs
    )
    data = f"schema {header}\n".encode("utf-8")
    data += dumps_diagram_binary(relation.universe.manager, relation.node)
    fp.write(data)
    return len(data)


def load_checkpoint_binary(universe: Universe, fp: BinaryIO) -> Relation:
    """Restore a binary checkpoint (see :func:`load_checkpoint` for the
    universe-compatibility requirements)."""
    blob = fp.read()
    first, sep, rest = blob.partition(b"\n")
    if not sep or not first.startswith(b"schema "):
        raise JeddError("missing checkpoint schema header")
    pairs = []
    for spec in first.decode("utf-8")[len("schema "):].split():
        attr_name, _, pd_name = spec.partition(":")
        pairs.append(
            (universe.get_attribute(attr_name), universe.get_physdom(pd_name))
        )
    node = loads_diagram_binary(universe.manager, rest)
    from repro.relations.relation import Schema

    return Relation(universe, Schema(pairs), node)
