"""Relation containers: eager reference-count management (section 4.2).

BDD libraries reclaim nodes by reference counting, and the paper's
generated Java code never exposes that burden to the programmer.  For
each local variable or field of relation type, the generated code
allocates a *relation container*; the variable points at its container
for its whole lifetime, and the BDD handle inside is updated only
through an assignment method that fixes up reference counts.  The four
ways a BDD can die (intermediate result, overwrite, scope exit, owner
death) are each covered:

1. intermediate results -- handled by :class:`~repro.relations.relation.
   Relation` itself (each value holds one reference, dropped when the
   value dies);
2. overwrite -- :meth:`RelationContainer.set` releases the old value
   immediately;
3. scope exit / last use -- the translator's liveness analysis emits
   :meth:`RelationContainer.free` at the point a variable may become
   dead ("we decrement the reference count of any BDD it may contain
   and remove the BDD from the container"); the container itself stays
   usable for later assignments, e.g. in the next loop iteration;
4. owner death -- ``__del__`` is the finalizer fallback.
"""

from __future__ import annotations

from typing import Optional

from repro.relations.domain import JeddError
from repro.relations.relation import Relation

__all__ = ["RelationContainer"]


class RelationContainer:
    """Holds the current value of one relation variable or field."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str = "<anonymous>") -> None:
        self.name = name
        self._value: Optional[Relation] = None

    def set(self, value: Optional[Relation]) -> None:
        """Assign a new relation, eagerly releasing the previous one."""
        old = self._value
        self._value = value
        if old is not None and old is not value:
            old.dispose()

    def get(self) -> Relation:
        """The current relation; reading an unset container is an error."""
        if self._value is None:
            raise JeddError(
                f"container {self.name!r} read before assignment "
                "(or after its last-use free)"
            )
        return self._value

    def is_set(self) -> bool:
        """Whether the container currently holds a relation."""
        return self._value is not None

    def free(self) -> None:
        """Release the held relation now (emitted at last-use points).

        The container remains assignable: a loop may free a temporary at
        the end of each iteration and refill it in the next.
        """
        if self._value is not None:
            self._value.dispose()
            self._value = None

    def __del__(self) -> None:
        # Finalizer fallback (death case 4); safe if already freed.
        if self._value is not None:
            self._value.dispose()

    def __repr__(self) -> str:
        return f"RelationContainer({self.name!r}, {self._value!r})"
