"""Cost-based scheduling of IR products.

The paper's profiler (section 5) exists because the *order* in which
relational operations touch the diagrams dominates running time, and
Jedd left choosing that order to the programmer.  This module automates
the choice for the one place it matters most — the n-ary products that
join/compose chains and rule bodies lower to — with the cheap estimates
the runtime already has on hand:

- ``satcount`` (``Relation.size``) for input cardinalities,
- diagram node counts for input sizes,
- live attribute widths (distinct-value estimates per attribute, i.e.
  interned domain sizes) for join selectivity.

The model is the textbook one: the cardinality of a natural join is the
product of the input cardinalities divided by the domain size of every
shared attribute, capped by the product of the surviving attributes'
domain sizes; a step's kernel work is approximated by
``min(nodes_a * nodes_b, card * bits)``.  Orders are chosen greedily —
start from the smallest part (or the *anchor*: semi-naive evaluation
anchors the delta atom first so every step is bounded by the delta),
then repeatedly absorb the connected part with the smallest estimated
result.  After ordering, every quantified attribute is scheduled at the
first step where no later part mentions it (early existential
quantification / projection pushdown).

Plans are frozen dataclasses of primitives, picklable so the parallel
executor can ship them to worker processes.  :class:`Planner` caches
them by (structural shape, universe generation, anchor): re-planning
happens only when the shape is new or the universe's plan generation
moved (a reordering pass or an explicit invalidation).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from math import log2
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

__all__ = [
    "Estimate",
    "PlanStep",
    "ProductPlan",
    "RulePlan",
    "Planner",
    "estimate_aggregate",
    "plan_product",
    "plan_rule",
]

#: Estimates are capped here so chained multiplications stay finite.
_CAP = 1e18


@dataclass(frozen=True)
class Estimate:
    """What the planner knows about one input: tuple count and diagram
    node count (both may be estimates, e.g. domain maxima for static
    EXPLAIN before any data exists)."""

    card: float
    nodes: float


@dataclass(frozen=True)
class PlanStep:
    """One pipeline step: match the running result with part ``part``
    on the attributes ``on``, then quantify ``drop`` out."""

    part: int
    on: Tuple[str, ...]
    drop: Tuple[str, ...]
    est_card: float
    est_nodes: float


@dataclass(frozen=True)
class ProductPlan:
    """A scheduled n-ary product.  ``order[0]`` is the base relation;
    ``steps`` has one entry per remaining part, in execution order."""

    order: Tuple[int, ...]
    base_drop: Tuple[str, ...]
    steps: Tuple[PlanStep, ...]
    est_card: float
    est_nodes: float
    optimized: bool

    def pipeline(self) -> Tuple[Tuple[int, Tuple[str, ...], Tuple[str, ...]], ...]:
        """The ``(part, on, drop)`` triples, for callers that execute
        the plan against their own relation list."""
        return tuple((s.part, s.on, s.drop) for s in self.steps)


@dataclass(frozen=True)
class RulePlan:
    """A planned fixpoint rule body: the positive-atom product plus the
    cleanup the engine applies afterwards (negation joins read
    ``neg_drop`` attributes, which are projected away before the final
    rename onto the head relation's declared attribute names)."""

    delta_idx: Optional[int]
    product: ProductPlan
    neg_drop: Tuple[str, ...]
    rename: Tuple[Tuple[str, str], ...]


def _bits(weight: float) -> float:
    return max(1.0, log2(max(weight, 2.0)))


def _cap_card(card: float, attrs, weight: Callable[[str], float]) -> float:
    limit = 1.0
    for a in attrs:
        limit = min(limit * max(weight(a), 1.0), _CAP)
    return min(card, limit, _CAP)


def _join_est(
    card_a: float,
    nodes_a: float,
    attrs_a: frozenset,
    card_b: float,
    nodes_b: float,
    attrs_b: frozenset,
    drop: frozenset,
    weight: Callable[[str], float],
) -> Tuple[float, float, frozenset]:
    shared = attrs_a & attrs_b
    card = min(card_a * card_b, _CAP)
    for s in shared:
        card /= max(weight(s), 1.0)
    out_attrs = (attrs_a | attrs_b) - drop
    card = _cap_card(card, out_attrs, weight)
    bits = sum(_bits(weight(a)) for a in (attrs_a | attrs_b))
    nodes = min(nodes_a * nodes_b, max(card, 1.0) * max(bits, 1.0), _CAP)
    return card, nodes, out_attrs


def estimate_aggregate(
    input_est: Estimate,
    group_by: Sequence[str],
    weight: Callable[[str], float],
) -> Estimate:
    """Cost an aggregate over a planned input.

    The result has one row per distinct group tuple, so its cardinality
    is the input cardinality capped by the product of the group
    attributes' distinct-value weights (an empty ``group_by`` means one
    global row).  The dominant kernel cost is the abstraction sweep over
    the input diagram, so the node estimate carries the input's node
    count through: an aggregate never enlarges its operand.  The
    aggregate itself is placed by construction — after projection
    pushdown — so only this result estimate matters to enclosing plans.
    """
    card = _cap_card(max(input_est.card, 1.0), group_by, weight)
    bits = sum(_bits(weight(a)) for a in group_by)
    nodes = min(input_est.nodes, max(card, 1.0) * max(bits, 1.0), _CAP)
    return Estimate(card, nodes)


def plan_product(
    part_attrs: Sequence[frozenset],
    quantify: frozenset,
    estimates: Sequence[Estimate],
    weight: Callable[[str], float],
    anchor: Optional[int] = None,
    optimize: bool = True,
) -> ProductPlan:
    """Schedule an n-ary product.

    ``part_attrs`` gives each part's attribute names, ``quantify`` the
    attributes to existentially quantify out of the result, and
    ``estimates`` one :class:`Estimate` per part.  ``anchor`` forces a
    part to evaluate first (the semi-naive delta).  With
    ``optimize=False`` the identity order is kept and all
    quantification happens at the very last step — the unoptimized
    left-to-right baseline the differential suite compares against.
    """
    n = len(part_attrs)
    part_attrs = [frozenset(a) for a in part_attrs]
    quantify = frozenset(quantify)

    if not optimize:
        steps: List[PlanStep] = []
        cur_attrs = part_attrs[0]
        card, nodes = estimates[0].card, estimates[0].nodes
        total_nodes = 0.0
        for i in range(1, n):
            last = i == n - 1
            drop = quantify if last else frozenset()
            on = tuple(sorted(cur_attrs & part_attrs[i]))
            card, step_nodes, cur_attrs = _join_est(
                card, nodes, cur_attrs,
                estimates[i].card, estimates[i].nodes, part_attrs[i],
                drop, weight,
            )
            nodes = step_nodes
            total_nodes = min(total_nodes + step_nodes, _CAP)
            steps.append(PlanStep(i, on, tuple(sorted(drop)), card, step_nodes))
        base_drop = tuple(sorted(quantify)) if n == 1 else ()
        if n == 1:
            cur_attrs = part_attrs[0] - quantify
            card = _cap_card(card, cur_attrs, weight)
        return ProductPlan(
            tuple(range(n)), base_drop, tuple(steps), card, total_nodes, False
        )

    # How many not-yet-absorbed parts still mention each quantified
    # attribute; when the count hits zero the attribute is dead and can
    # be quantified out of the running result immediately.
    uses: Dict[str, int] = {a: 0 for a in quantify}
    for attrs in part_attrs:
        for a in attrs & quantify:
            uses[a] += 1

    if anchor is not None:
        base = anchor
    else:
        base = min(
            range(n), key=lambda i: (estimates[i].card, estimates[i].nodes, i)
        )
    remaining = [i for i in range(n) if i != base]
    for a in part_attrs[base] & quantify:
        uses[a] -= 1
    dead = frozenset(
        a for a in part_attrs[base] & quantify if uses[a] == 0
    )
    cur_attrs = part_attrs[base] - dead
    card = _cap_card(estimates[base].card, cur_attrs, weight)
    nodes = estimates[base].nodes
    order = [base]
    steps = []
    total_nodes = 0.0
    while remaining:
        connected = [i for i in remaining if cur_attrs & part_attrs[i]]
        candidates = connected or remaining
        best = None
        for i in candidates:
            drop = frozenset(
                a
                for a in (cur_attrs | part_attrs[i]) & quantify
                if uses[a] <= (1 if a in part_attrs[i] else 0)
            )
            est_card, est_nodes, out_attrs = _join_est(
                card, nodes, cur_attrs,
                estimates[i].card, estimates[i].nodes, part_attrs[i],
                drop, weight,
            )
            score = (est_card, est_nodes, i)
            if best is None or score < best[0]:
                best = (score, i, drop, est_card, est_nodes, out_attrs)
        _, i, drop, card, nodes, out_attrs = best
        on = tuple(sorted(cur_attrs & part_attrs[i]))
        cur_attrs = out_attrs
        remaining.remove(i)
        for a in part_attrs[i] & quantify:
            uses[a] -= 1
        order.append(i)
        total_nodes = min(total_nodes + nodes, _CAP)
        steps.append(PlanStep(i, on, tuple(sorted(drop)), card, nodes))
    return ProductPlan(
        tuple(order), tuple(sorted(dead)), tuple(steps), card,
        total_nodes, True,
    )


def plan_rule(
    atom_vars: Sequence[Sequence[str]],
    head_vars: Sequence[str],
    neg_vars: Sequence[str],
    head_names: Sequence[str],
    estimates: Sequence[Estimate],
    weight: Callable[[str], float],
    delta_idx: Optional[int],
    optimize: bool = True,
) -> RulePlan:
    """Plan one fixpoint rule body (see :class:`RulePlan`).

    ``atom_vars`` lists the positive atoms' variable tuples in source
    order; variables needed by the head or by a negated atom survive
    the product, everything else is quantified.  ``delta_idx`` anchors
    the delta atom first (only when optimizing — the unoptimized
    baseline evaluates strictly left to right).
    """
    keep = frozenset(head_vars) | frozenset(neg_vars)
    all_vars: frozenset = frozenset()
    for vars in atom_vars:
        all_vars |= frozenset(vars)
    quantify = all_vars - keep
    product = plan_product(
        [frozenset(v) for v in atom_vars],
        quantify,
        estimates,
        weight,
        anchor=delta_idx if optimize else None,
        optimize=optimize,
    )
    neg_drop = tuple(sorted((keep & all_vars) - frozenset(head_vars)))
    ren = tuple(
        (v, n) for v, n in zip(head_vars, head_names) if v != n
    )
    return RulePlan(delta_idx, product, neg_drop, ren)


class Planner:
    """A bounded plan cache.

    Keys are ``(shape, generation, anchor, optimize)``: the structural
    key of the product (or any caller-chosen hashable shape), the
    universe's plan generation (bumped by dynamic variable reordering
    and :meth:`Universe.invalidate_plans`), and the anchored part.  The
    estimate thunk is only invoked on a miss, so cached evaluation pays
    no ``satcount`` cost.
    """

    def __init__(self, optimize: bool = True, max_entries: int = 512) -> None:
        self.optimize = optimize
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._cache: "OrderedDict[tuple, object]" = OrderedDict()

    def _get(self, key: tuple, build: Callable[[], object]):
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            self._cache.move_to_end(key)
            return cached
        self.misses += 1
        plan = build()
        self._cache[key] = plan
        while len(self._cache) > self.max_entries:
            self._cache.popitem(last=False)
        return plan

    def product_plan(
        self,
        shape: tuple,
        generation: int,
        part_attrs: Sequence[frozenset],
        quantify: frozenset,
        estimate_fn: Callable[[], Sequence[Estimate]],
        weight: Callable[[str], float],
        anchor: Optional[int] = None,
    ) -> ProductPlan:
        key = ("product", shape, generation, anchor, self.optimize)
        return self._get(
            key,
            lambda: plan_product(
                part_attrs, quantify, estimate_fn(), weight,
                anchor=anchor, optimize=self.optimize,
            ),
        )

    def rule_plan(
        self,
        shape: tuple,
        generation: int,
        atom_vars: Sequence[Sequence[str]],
        head_vars: Sequence[str],
        neg_vars: Sequence[str],
        head_names: Sequence[str],
        estimate_fn: Callable[[], Sequence[Estimate]],
        weight: Callable[[str], float],
        delta_idx: Optional[int],
    ) -> RulePlan:
        key = ("rule", shape, generation, delta_idx, self.optimize)
        return self._get(
            key,
            lambda: plan_rule(
                atom_vars, head_vars, neg_vars, head_names,
                estimate_fn(), weight, delta_idx, optimize=self.optimize,
            ),
        )

    def cache_info(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._cache),
        }
