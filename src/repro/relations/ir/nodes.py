"""The relational-algebra IR: a small expression language over relations.

Every lowering layer (the mini-language interpreter and code generator,
the fixpoint engine's rule bodies, the shell) builds these nodes instead
of calling :class:`~repro.relations.relation.Relation` methods directly;
the planner (:mod:`repro.relations.ir.planner`) then reorders and
schedules the products before execution
(:mod:`repro.relations.ir.execute`).

Nodes are immutable values with a *structural key* (``node.key``): two
nodes with equal keys denote the same computation over the same leaf
slots, which is what the plan cache and the evaluator's
common-subexpression memo key on.  A node does not hold relations —
leaves name *slots* that the caller binds to relations at evaluation
time, so one lowered expression can be evaluated many times (loop
bodies, fixpoint iterations, worker processes) against changing inputs.

The operation set mirrors Figure 5 of the paper plus what the runtime
needs:

``leaf``
    a slot to be bound to a relation (a scan);
``product``
    the natural join of its parts on shared attribute names, with an
    optional set of attributes existentially quantified out of the
    result — the planner's main subject (``join``/``compose`` both
    lower to it, after renames align the compared attributes);
``project``
    existential quantification (``a=>``);
``rename`` / ``replace`` / ``copy``
    attribute renaming, physical-domain moves (``replace`` carries an
    optional ``tag`` so the interpreter can log wrapper replaces at
    their source positions), and ``a=>b c`` copies;
``union`` / ``intersect`` / ``diff``
    the set operations;
``filter``
    selection by fixed attribute values (section 2.2.4);
``aggregate``
    grouped ``count/sum/max/min/mean`` producing a weighted relation
    (the quantitative extension — executed via the multi-terminal
    backend's abstraction operators where available).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.relations.domain import JeddError

__all__ = [
    "Node",
    "Leaf",
    "Match",
    "Product",
    "Project",
    "Rename",
    "Replace",
    "Copy",
    "Union",
    "Intersect",
    "Diff",
    "Filter",
    "Aggregate",
    "AGGREGATES",
    "leaf",
    "match",
    "positional_join",
    "product",
    "project",
    "rename",
    "replace",
    "copy",
    "union",
    "intersect",
    "diff",
    "filter",
    "aggregate",
    "to_source",
]

#: The aggregate operations :class:`Aggregate` understands.
AGGREGATES = ("count", "sum", "max", "min", "mean")


class Node:
    """Base class.  ``attrs`` is the produced attribute-name set,
    ``slots`` the leaf slot names the subtree reads (sorted, deduped),
    ``key`` the hashable structural identity."""

    __slots__ = ("key", "attrs", "slots")

    key: tuple
    attrs: frozenset
    slots: Tuple[str, ...]

    def evaluate(self, env, universe, planner=None, **kwargs):
        """Evaluate this node; see :func:`repro.relations.ir.evaluate`."""
        from repro.relations.ir.execute import evaluate, EvalContext

        ctx = EvalContext(universe, env, planner=planner, **kwargs)
        return evaluate(self, ctx)

    def __repr__(self) -> str:
        return to_source(self, alias="ir")


def _merge_slots(children: Iterable[Node]) -> Tuple[str, ...]:
    seen = []
    for child in children:
        for slot in child.slots:
            if slot not in seen:
                seen.append(slot)
    return tuple(sorted(seen))


class Leaf(Node):
    __slots__ = ("slot",)

    def __init__(self, slot: str, attrs: Iterable[str]) -> None:
        self.slot = slot
        self.attrs = frozenset(attrs)
        if not self.attrs:
            raise JeddError(f"leaf {slot!r}: empty attribute set")
        self.slots = (slot,)
        self.key = ("leaf", slot, tuple(sorted(self.attrs)))


class Product(Node):
    """Natural join of ``parts`` on shared attribute names, then
    existential quantification of ``quantify``."""

    __slots__ = ("parts", "quantify")

    def __init__(
        self, parts: Sequence[Node], quantify: Iterable[str] = ()
    ) -> None:
        self.parts = tuple(parts)
        if not self.parts:
            raise JeddError("product: no parts")
        self.quantify = frozenset(quantify)
        produced: frozenset = frozenset()
        for part in self.parts:
            produced |= part.attrs
        missing = self.quantify - produced
        if missing:
            raise JeddError(
                f"product: cannot quantify {sorted(missing)}: "
                "not produced by any part"
            )
        self.attrs = produced - self.quantify
        self.slots = _merge_slots(self.parts)
        self.key = (
            "product",
            tuple(p.key for p in self.parts),
            tuple(sorted(self.quantify)),
        )


class Project(Node):
    __slots__ = ("child", "drop")

    def __init__(self, child: Node, drop: Iterable[str]) -> None:
        self.child = child
        self.drop = frozenset(drop)
        missing = self.drop - child.attrs
        if missing:
            raise JeddError(
                f"project: {sorted(missing)} not in the child schema"
            )
        self.attrs = child.attrs - self.drop
        self.slots = child.slots
        self.key = ("project", child.key, tuple(sorted(self.drop)))


class Rename(Node):
    __slots__ = ("child", "mapping")

    def __init__(self, child: Node, mapping: Mapping[str, str]) -> None:
        self.child = child
        self.mapping = tuple(sorted(mapping.items()))
        sources = frozenset(mapping)
        missing = sources - child.attrs
        if missing:
            raise JeddError(
                f"rename: {sorted(missing)} not in the child schema"
            )
        attrs = set(child.attrs - sources)
        for src, dst in self.mapping:
            if dst in attrs:
                raise JeddError(
                    f"rename: target {dst!r} collides with an existing "
                    "attribute"
                )
            attrs.add(dst)
        self.attrs = frozenset(attrs)
        self.slots = child.slots
        self.key = ("rename", child.key, self.mapping)


class Replace(Node):
    """Physical-domain moves: ``targets`` maps attribute name to the
    physical-domain name it must land in.  ``tag`` is an opaque label
    (the interpreter passes the wrapper's source position) reported to
    the evaluation context's ``on_replace`` callback; it participates in
    the structural key so distinct program points never share a memo
    entry (each must log its own replace)."""

    __slots__ = ("child", "targets", "tag")

    def __init__(
        self,
        child: Node,
        targets: Mapping[str, str],
        tag: Optional[object] = None,
    ) -> None:
        self.child = child
        self.targets = tuple(sorted(targets.items()))
        if not self.targets:
            raise JeddError("replace: no attribute moves")
        missing = frozenset(targets) - child.attrs
        if missing:
            raise JeddError(
                f"replace: {sorted(missing)} not in the child schema"
            )
        self.tag = tag
        self.attrs = child.attrs
        self.slots = child.slots
        self.key = ("replace", child.key, self.targets, str(tag))


class Copy(Node):
    """``source => t1 t2``: duplicate an attribute's value column.

    ``physdoms`` optionally names the physical domains of the freshly
    created targets (the ones beyond the first, which reuses the
    source's placement), as :meth:`Relation.copy` expects."""

    __slots__ = ("child", "source", "targets", "physdoms")

    def __init__(
        self,
        child: Node,
        source: str,
        targets: Sequence[str],
        physdoms: Optional[Sequence[str]] = None,
    ) -> None:
        self.child = child
        self.source = source
        self.targets = tuple(targets)
        self.physdoms = tuple(physdoms) if physdoms is not None else None
        if source not in child.attrs:
            raise JeddError(f"copy: {source!r} not in the child schema")
        attrs = set(child.attrs)
        attrs.discard(source)
        for t in self.targets:
            if t in attrs:
                raise JeddError(
                    f"copy: target {t!r} collides with an existing attribute"
                )
            attrs.add(t)
        self.attrs = frozenset(attrs)
        self.slots = child.slots
        self.key = (
            "copy", child.key, source, self.targets, self.physdoms,
        )


class Match(Node):
    """Positional comparison, Jedd's ``x{a1,..} >< y{b1,..}`` (``keep``
    true) and ``x{a1,..} <> y{b1,..}`` (``keep`` false), executed by
    :meth:`Relation.join` / :meth:`Relation.compose`.

    Most joins lower to :class:`Product` after a rename aligns the
    compared attributes, which is what lets the planner reorder them.
    This node is the escape hatch for comparisons attribute naming
    cannot express as a natural join — e.g. transitive closure's
    ``path{t} <> edge{s}`` where both names stay live on both sides —
    and for preserving the runtime's own error on overlapping
    uncompared attributes.  The planner treats it as a barrier."""

    __slots__ = ("left", "right", "left_attrs", "right_attrs", "keep")

    def __init__(
        self,
        left: Node,
        right: Node,
        left_attrs: Sequence[str],
        right_attrs: Sequence[str],
        keep: bool,
    ) -> None:
        self.left = left
        self.right = right
        self.left_attrs = tuple(left_attrs)
        self.right_attrs = tuple(right_attrs)
        if len(self.left_attrs) != len(self.right_attrs):
            raise JeddError(
                "match: compared attribute lists differ in length"
            )
        self.keep = keep
        missing = frozenset(self.left_attrs) - left.attrs
        missing |= frozenset(self.right_attrs) - right.attrs
        if missing:
            raise JeddError(
                f"match: {sorted(missing)} not in the operand schemas"
            )
        rest_right = right.attrs - frozenset(self.right_attrs)
        if keep:
            self.attrs = left.attrs | rest_right
        else:
            self.attrs = (left.attrs - frozenset(self.left_attrs)) | rest_right
        self.slots = _merge_slots((left, right))
        self.key = (
            "match",
            left.key,
            right.key,
            self.left_attrs,
            self.right_attrs,
            keep,
        )


class _SetOp(Node):
    __slots__ = ("left", "right")

    _op = ""

    def __init__(self, left: Node, right: Node) -> None:
        self.left = left
        self.right = right
        if left.attrs != right.attrs:
            raise JeddError(
                f"{self._op}: operand schemas differ: "
                f"{sorted(left.attrs)} vs {sorted(right.attrs)}"
            )
        self.attrs = left.attrs
        self.slots = _merge_slots((left, right))
        self.key = (self._op, left.key, right.key)


class Union(_SetOp):
    __slots__ = ()
    _op = "union"


class Intersect(_SetOp):
    __slots__ = ()
    _op = "intersect"


class Diff(_SetOp):
    __slots__ = ()
    _op = "diff"


class Aggregate(Node):
    """Grouped aggregation: ``agg`` over ``attr`` per distinct
    ``group_by`` tuple, evaluating to a
    :class:`~repro.relations.relation.WeightedRelation` keyed by the
    group columns.  ``attr`` is ``None`` only for ``count``, which then
    counts distinct non-group tuples.

    The node's ``attrs`` are the group columns: a weighted result never
    feeds relational operators (the typechecker forbids it), so the
    attribute set only describes the result's key schema.  Build these
    with the :func:`aggregate` constructor, which projects the operand
    onto the needed attributes first — that projection merges into a
    child product's ``quantify`` set, so the planner schedules the
    dedup exactly where the unused attributes die (the aggregate sits
    *after* projection pushdown by construction)."""

    __slots__ = ("child", "agg", "attr", "group_by")

    def __init__(
        self,
        child: Node,
        agg: str,
        attr: Optional[str],
        group_by: Sequence[str],
    ) -> None:
        if agg not in AGGREGATES:
            raise JeddError(
                f"unknown aggregate {agg!r} (expected one of "
                f"{', '.join(AGGREGATES)})"
            )
        self.child = child
        self.agg = agg
        self.attr = attr
        self.group_by = tuple(group_by)
        if len(set(self.group_by)) != len(self.group_by):
            raise JeddError("aggregate: repeated group-by attribute")
        missing = frozenset(self.group_by) - child.attrs
        if missing:
            raise JeddError(
                f"aggregate: {sorted(missing)} not in the child schema"
            )
        if attr is not None:
            if attr not in child.attrs:
                raise JeddError(
                    f"aggregate: {attr!r} not in the child schema"
                )
            if attr in self.group_by:
                raise JeddError(
                    f"aggregate: {attr!r} cannot be both aggregated "
                    "and grouped"
                )
        elif agg != "count":
            raise JeddError(f"aggregate {agg!r} needs an attribute")
        self.attrs = frozenset(self.group_by)
        self.slots = child.slots
        self.key = ("aggregate", child.key, agg, attr, self.group_by)


class Filter(Node):
    """Selection: keep tuples whose attributes carry fixed values."""

    __slots__ = ("child", "values")

    def __init__(self, child: Node, values: Mapping[str, object]) -> None:
        self.child = child
        self.values = tuple(sorted(values.items()))
        missing = frozenset(values) - child.attrs
        if missing:
            raise JeddError(
                f"filter: {sorted(missing)} not in the child schema"
            )
        self.attrs = child.attrs
        self.slots = child.slots
        self.key = ("filter", child.key, self.values)


# ----------------------------------------------------------------------
# Constructors (the public surface; ``product`` also rewrites)
# ----------------------------------------------------------------------


def leaf(slot: str, attrs: Iterable[str]) -> Leaf:
    return Leaf(slot, attrs)


def product(parts: Sequence[Node], quantify: Iterable[str] = ()) -> Node:
    """Build a product, flattening nested products where that preserves
    meaning — the rewrite that turns binary join/compose chains into the
    n-ary conjunct lists the planner reorders.

    A nested ``Product`` part is inlined when the attributes it
    quantifies appear nowhere else in the surrounding product: neither
    as an attribute of a sibling part (the name would suddenly be
    joined) nor among another inlined part's quantified attributes (two
    unrelated existentials would be identified).  Its quantified set
    then merges into the outer one — quantification is simply deferred
    to where the planner schedules it.  A single-part, no-quantify
    product collapses to its part.
    """
    parts = list(parts)
    quantify = set(quantify)
    flat: list = []
    merged_quantify: set = set(quantify)
    for i, part in enumerate(parts):
        if isinstance(part, Product) and part.quantify:
            elsewhere: set = set(quantify)
            for j, other in enumerate(parts):
                if j != i:
                    elsewhere |= other.attrs
                    if isinstance(other, Product):
                        elsewhere |= other.quantify
            if part.quantify & elsewhere:
                flat.append(part)  # unsafe: keep as a barrier
                continue
            flat.extend(part.parts)
            merged_quantify |= part.quantify
        elif isinstance(part, Product):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if len(flat) == 1 and not merged_quantify:
        return flat[0]
    return Product(flat, merged_quantify)


def project(child: Node, drop: Iterable[str]) -> Node:
    """Existential quantification, pushed into a child product when
    possible (the quantified attributes just join its ``quantify`` set,
    letting the planner schedule them at the step where they die)."""
    drop = frozenset(drop)
    if not drop:
        return child
    if isinstance(child, Product):
        return Product(child.parts, child.quantify | drop)
    return Project(child, drop)


def rename(child: Node, mapping: Mapping[str, str]) -> Node:
    mapping = {s: d for s, d in mapping.items() if s != d}
    if not mapping:
        return child
    return Rename(child, mapping)


def replace(
    child: Node, targets: Mapping[str, str], tag: Optional[object] = None
) -> Node:
    if not targets:
        return child
    return Replace(child, targets, tag)


def copy(
    child: Node,
    source: str,
    targets: Sequence[str],
    physdoms: Optional[Sequence[str]] = None,
) -> Node:
    return Copy(child, source, targets, physdoms)


def match(
    left: Node,
    right: Node,
    left_attrs: Sequence[str],
    right_attrs: Sequence[str],
    keep: bool,
) -> Node:
    return Match(left, right, left_attrs, right_attrs, keep)


def positional_join(
    left: Node,
    right: Node,
    left_attrs: Sequence[str],
    right_attrs: Sequence[str],
    keep: bool,
) -> Node:
    """Lower Jedd's positional ``x{a,..} >< y{b,..}`` (``keep``) or
    ``x{a,..} <> y{b,..}`` to a planner-visible :class:`Product` when a
    rename can align the compared attributes, falling back to the
    :class:`Match` barrier when naming cannot express the comparison
    (or when the operands overlap and the runtime should raise its own
    error at evaluation time)."""
    left_attrs = list(left_attrs)
    right_attrs = list(right_attrs)
    rest_left = left.attrs - frozenset(left_attrs)
    rest_right = right.attrs - frozenset(right_attrs)
    overlap = (left.attrs if keep else rest_left) & rest_right
    if not overlap:
        # Compared columns join under the left names (what ``><``
        # keeps; under ``<>`` they die, so either side's names serve as
        # long as they collide with nothing live).
        if not (frozenset(left_attrs) & rest_right):
            mapping = {
                r: l for l, r in zip(left_attrs, right_attrs) if r != l
            }
            quantify = () if keep else tuple(left_attrs)
            return product((left, rename(right, mapping)), quantify)
        if not keep and not (frozenset(right_attrs) & rest_left):
            mapping = {
                l: r for l, r in zip(left_attrs, right_attrs) if r != l
            }
            return product(
                (rename(left, mapping), right), tuple(right_attrs)
            )
    return Match(left, right, left_attrs, right_attrs, keep)


def union(left: Node, right: Node) -> Node:
    return Union(left, right)


def intersect(left: Node, right: Node) -> Node:
    return Intersect(left, right)


def diff(left: Node, right: Node) -> Node:
    return Diff(left, right)


def filter(child: Node, values: Mapping[str, object]) -> Node:  # noqa: A001
    if not values:
        return child
    return Filter(child, values)


def aggregate(
    child: Node,
    agg: str,
    attr: Optional[str] = None,
    group_by: Sequence[str] = (),
) -> Aggregate:
    """Build an :class:`Aggregate`, first projecting ``child`` onto the
    attributes the aggregate reads (``{attr} | group_by``; everything
    for a bare ``count``).  The :func:`project` wrapper pushes that
    quantification into a child product, so the planner dedups at the
    earliest step and the aggregate consumes the narrowest relation."""
    group_by = tuple(group_by)
    if attr is not None:
        needed = frozenset(group_by) | {attr}
        child = project(child, child.attrs - needed)
    return Aggregate(child, agg, attr, group_by)


# ----------------------------------------------------------------------
# Serialization to Python source (for the code generator)
# ----------------------------------------------------------------------


def _dict_src(pairs: Tuple[Tuple[str, object], ...]) -> str:
    inner = ", ".join(f"{a!r}: {v!r}" for a, v in pairs)
    return "{" + inner + "}"


def to_source(node: Node, alias: str = "_ir") -> str:
    """Render ``node`` as a Python expression over the constructor
    functions of this module (imported under ``alias``); evaluating the
    expression rebuilds an equal node.  Used by the code generator to
    embed lowered IR in emitted modules."""
    if isinstance(node, Leaf):
        return f"{alias}.leaf({node.slot!r}, {tuple(sorted(node.attrs))!r})"
    if isinstance(node, Product):
        parts = ", ".join(to_source(p, alias) for p in node.parts)
        quant = tuple(sorted(node.quantify))
        return f"{alias}.product(({parts},), quantify={quant!r})"
    if isinstance(node, Project):
        drop = tuple(sorted(node.drop))
        return f"{alias}.project({to_source(node.child, alias)}, {drop!r})"
    if isinstance(node, Rename):
        return (
            f"{alias}.rename({to_source(node.child, alias)}, "
            f"{_dict_src(node.mapping)})"
        )
    if isinstance(node, Replace):
        tag = f", tag={node.tag!r}" if node.tag is not None else ""
        return (
            f"{alias}.replace({to_source(node.child, alias)}, "
            f"{_dict_src(node.targets)}{tag})"
        )
    if isinstance(node, Copy):
        pds = f", {list(node.physdoms)!r}" if node.physdoms is not None else ""
        return (
            f"{alias}.copy({to_source(node.child, alias)}, "
            f"{node.source!r}, {list(node.targets)!r}{pds})"
        )
    if isinstance(node, Match):
        return (
            f"{alias}.match({to_source(node.left, alias)}, "
            f"{to_source(node.right, alias)}, "
            f"{list(node.left_attrs)!r}, {list(node.right_attrs)!r}, "
            f"{node.keep!r})"
        )
    if isinstance(node, (Union, Intersect, Diff)):
        op = type(node)._op
        return (
            f"{alias}.{op}({to_source(node.left, alias)}, "
            f"{to_source(node.right, alias)})"
        )
    if isinstance(node, Filter):
        return (
            f"{alias}.filter({to_source(node.child, alias)}, "
            f"{_dict_src(node.values)})"
        )
    if isinstance(node, Aggregate):
        return (
            f"{alias}.aggregate({to_source(node.child, alias)}, "
            f"{node.agg!r}, attr={node.attr!r}, "
            f"group_by={node.group_by!r})"
        )
    raise JeddError(f"cannot serialize {type(node).__name__}")
