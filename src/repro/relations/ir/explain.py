"""Static EXPLAIN: plan IR trees from estimates alone, without data.

``jeddc --explain`` runs before any relation exists, so the planner is
fed purely static estimates — an attribute's weight is its domain's
declared maximum size, a leaf's cardinality the (capped) product of its
attributes' weights.  The shell's ``explain`` command prefers the
dynamic path (evaluate with a ``collect`` list, which also reports
actuals); this module is the fallback shared by both when only shapes
are known.
"""

from __future__ import annotations

from math import log2
from typing import Callable, List, Optional, Tuple

from repro.relations.ir.execute import PlanReport, _part_label
from repro.relations.ir.nodes import (
    Aggregate,
    Copy,
    Diff,
    Filter,
    Intersect,
    Leaf,
    Match,
    Node,
    Product,
    Project,
    Rename,
    Replace,
    Union,
)
from repro.relations.ir.planner import (
    Estimate,
    plan_product,
)

__all__ = ["static_reports", "format_reports"]

_CAP = 1e18


def _leaf_estimate(
    node: Leaf, weight: Callable[[str], float]
) -> Estimate:
    card = 1.0
    bits = 0.0
    for a in sorted(node.attrs):
        w = max(weight(a), 1.0)
        card = min(card * w, _CAP)
        bits += max(1.0, log2(max(w, 2.0)))
    return Estimate(card, min(card, max(card, 1.0) * bits, _CAP))


def static_reports(
    node: Node,
    weight: Callable[[str], float],
    optimize: bool = True,
    label: str = "",
    leaf_estimate: Optional[Callable[[Leaf], Estimate]] = None,
) -> Tuple[Estimate, List[PlanReport]]:
    """Walk ``node``, planning every product with static estimates;
    returns the root estimate and one :class:`PlanReport` per product
    (in evaluation order, no actuals)."""
    reports: List[PlanReport] = []
    counter = [0]

    def est(n: Node) -> Estimate:
        if isinstance(n, Leaf):
            if leaf_estimate is not None:
                return leaf_estimate(n)
            return _leaf_estimate(n, weight)
        if isinstance(n, Product):
            part_ests = [est(p) for p in n.parts]
            plan = plan_product(
                [p.attrs for p in n.parts],
                n.quantify,
                part_ests,
                weight,
                optimize=optimize,
            )
            counter[0] += 1
            name = label or "<expr>"
            if counter[0] > 1:
                name = f"{name}#{counter[0]}"
            rows = [
                {
                    "part": s.part,
                    "on": list(s.on),
                    "drop": list(s.drop),
                    "est_card": s.est_card,
                    "est_nodes": s.est_nodes,
                }
                for s in plan.steps
            ]
            reports.append(
                PlanReport(
                    label=name,
                    optimized=plan.optimized,
                    order=list(plan.order),
                    part_labels=[_part_label(p) for p in n.parts],
                    est_card=plan.est_card,
                    est_nodes=plan.est_nodes,
                    steps=rows,
                )
            )
            nodes = (
                plan.steps[-1].est_nodes
                if plan.steps
                else part_ests[0].nodes
            )
            return Estimate(plan.est_card, nodes)
        if isinstance(n, Project):
            child = est(n.child)
            card = 1.0
            for a in sorted(n.attrs):
                card = min(card * max(weight(a), 1.0), _CAP)
            return Estimate(min(child.card, card), child.nodes)
        if isinstance(n, (Rename, Replace)):
            return est(n.child)
        if isinstance(n, Copy):
            child = est(n.child)
            return Estimate(child.card, min(child.nodes * 2, _CAP))
        if isinstance(n, Filter):
            child = est(n.child)
            card = child.card
            for a, _ in n.values:
                card /= max(weight(a), 1.0)
            return Estimate(max(card, 0.0), child.nodes)
        if isinstance(n, Match):
            a, b = est(n.left), est(n.right)
            card = 1.0
            for attr in sorted(n.attrs):
                card = min(card * max(weight(attr), 1.0), _CAP)
            card = min(card, a.card * b.card)
            return Estimate(card, min(a.nodes * b.nodes, _CAP))
        if isinstance(n, Union):
            a, b = est(n.left), est(n.right)
            return Estimate(
                min(a.card + b.card, _CAP), min(a.nodes + b.nodes, _CAP)
            )
        if isinstance(n, Intersect):
            a, b = est(n.left), est(n.right)
            return Estimate(min(a.card, b.card), min(a.nodes, b.nodes))
        if isinstance(n, Diff):
            a, b = est(n.left), est(n.right)
            return Estimate(a.card, min(a.nodes + b.nodes, _CAP))
        if isinstance(n, Aggregate):
            # One weighted row per distinct group tuple: capped by the
            # group columns' domain product and by the operand's own
            # cardinality (grouping never multiplies rows).
            child = est(n.child)
            card = 1.0
            for a in sorted(n.group_by):
                card = min(card * max(weight(a), 1.0), _CAP)
            return Estimate(min(child.card, card), child.nodes)
        raise TypeError(f"cannot estimate {type(n).__name__}")

    return est(node), reports


def format_reports(reports: List[PlanReport]) -> str:
    if not reports:
        return "(no products to plan)"
    return "\n".join(r.format() for r in reports)
