"""repro.relations.ir: the relational-algebra IR and query planner.

Every lowering layer — the mini-language interpreter and code
generator (:mod:`repro.jedd`), the fixpoint engine's rule bodies
(:mod:`repro.relations.fixpoint`), the parallel executor's shipped
tasks (:mod:`repro.relations.parallel`), and the shell — expresses
relational computation as these IR nodes and executes them through one
cost-based planner, instead of hard-coding whatever operation order the
source happened to write.  See ``docs/PLANNER.md`` for the IR grammar,
the rewrite rules, the cost model, and the EXPLAIN output format.

Quick use::

    from repro.relations import ir

    expr = ir.product(
        (ir.leaf("assign", ("v", "w")), ir.leaf("pt", ("w", "o"))),
        quantify=("w",),
    )
    result = expr.evaluate({"assign": assign, "pt": pt}, universe)
"""

from repro.relations.ir.execute import (
    EvalContext,
    PlanReport,
    default_weight,
    evaluate,
    run_product_plan,
)
from repro.relations.ir.explain import format_reports, static_reports
from repro.relations.ir.nodes import (
    AGGREGATES,
    Aggregate,
    Copy,
    Diff,
    Filter,
    Intersect,
    Leaf,
    Match,
    Node,
    Product,
    Project,
    Rename,
    Replace,
    Union,
    aggregate,
    copy,
    diff,
    filter,
    intersect,
    leaf,
    match,
    positional_join,
    product,
    project,
    rename,
    replace,
    to_source,
    union,
)
from repro.relations.ir.planner import (
    Estimate,
    Planner,
    PlanStep,
    ProductPlan,
    RulePlan,
    estimate_aggregate,
    plan_product,
    plan_rule,
)

__all__ = [
    "AGGREGATES",
    "Aggregate",
    "Copy",
    "Diff",
    "Estimate",
    "EvalContext",
    "Filter",
    "Intersect",
    "Leaf",
    "Match",
    "Node",
    "PlanReport",
    "PlanStep",
    "Planner",
    "Product",
    "ProductPlan",
    "Project",
    "Rename",
    "Replace",
    "RulePlan",
    "Union",
    "aggregate",
    "copy",
    "default_weight",
    "diff",
    "estimate_aggregate",
    "evaluate",
    "filter",
    "format_reports",
    "intersect",
    "leaf",
    "match",
    "plan_product",
    "plan_rule",
    "positional_join",
    "product",
    "project",
    "rename",
    "replace",
    "run_product_plan",
    "static_reports",
    "to_source",
    "union",
]
