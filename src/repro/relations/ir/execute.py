"""Evaluation of IR nodes against bound relations.

The evaluator resolves leaf slots from an environment, asks the
:class:`~repro.relations.ir.planner.Planner` for a schedule of every
product it meets, and executes the schedule through
:meth:`Relation.compose_pipeline` — so on the BDD backend each planned
step is still one fused ``and_exist`` kernel call, and both backends and
the telemetry span tree keep working unchanged.

Two observability hooks ride along:

- when a telemetry session is active (or a ``collect`` list is passed
  for EXPLAIN), products run step by step instead of as one fused
  pipeline call, and each executed plan emits a ``plan.explain`` span
  (category ``"planner"``) carrying the estimated vs. actual
  cardinality and node count of every step;
- an optional ``memo`` dict gives common-subexpression elimination:
  results are keyed by (structural node key, the bound leaf relations'
  diagram nodes and physical-domain placements), so any two
  evaluations in the same memo scope that compute the same thing over
  the same inputs share one result.  The fixpoint engine passes a
  per-round memo so identical (sub)expressions across rule bodies are
  evaluated once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence

from repro import telemetry as _telemetry
from repro.relations.domain import JeddError, Universe
from repro.relations.ir.nodes import (
    Aggregate,
    Copy,
    Diff,
    Filter,
    Intersect,
    Leaf,
    Match,
    Node,
    Product,
    Project,
    Rename,
    Replace,
    Union,
)
from repro.relations.ir.planner import (
    Estimate,
    Planner,
    ProductPlan,
    estimate_aggregate,
)
from repro.relations.relation import Relation

__all__ = [
    "EvalContext",
    "PlanReport",
    "default_weight",
    "evaluate",
    "run_product_plan",
]


def default_weight(
    universe: Universe, static: bool = False
) -> Callable[[str], float]:
    """Distinct-value estimate per attribute: the number of objects
    interned in its domain (``static=True`` uses the declared maximum
    instead — for EXPLAIN before any data exists)."""

    def weight(attr_name: str) -> float:
        try:
            dom = universe.get_attribute(attr_name).domain
        except JeddError:
            return 2.0
        if static:
            return float(max(dom.max_size, 2))
        return float(max(len(dom), 1))

    return weight


@dataclass
class PlanReport:
    """One executed (or statically explained) product plan, for EXPLAIN
    output and the profiler.  ``steps`` rows carry ``part``, ``on``,
    ``drop``, ``est_card``/``est_nodes`` and — after execution —
    ``actual_card``/``actual_nodes``."""

    label: str
    optimized: bool
    order: Sequence[int]
    part_labels: Sequence[str]
    est_card: float
    est_nodes: float
    steps: List[dict] = field(default_factory=list)
    actual_nodes: Optional[float] = None
    seconds: float = 0.0

    def estimate_error(self) -> Optional[float]:
        """max(actual/est, est/actual) over the total node estimate;
        None before execution.  1.0 means the model was exact."""
        if self.actual_nodes is None:
            return None
        est = max(self.est_nodes, 1.0)
        act = max(self.actual_nodes, 1.0)
        return max(est / act, act / est)

    def format(self) -> str:
        mode = "optimized" if self.optimized else "unoptimized"
        lines = [f"plan {self.label or '<product>'} [{mode}]"]
        base = self.order[0] if self.order else 0
        base_label = (
            self.part_labels[base]
            if base < len(self.part_labels)
            else f"part {base}"
        )
        lines.append(f"  base: {base_label}")
        for row in self.steps:
            part = row["part"]
            label = (
                self.part_labels[part]
                if part < len(self.part_labels)
                else f"part {part}"
            )
            on = ",".join(row["on"]) or "-"
            drop = ",".join(row["drop"]) or "-"
            text = (
                f"  join {label} on [{on}] exists [{drop}]"
                f"  est {row['est_card']:.0f} tuples"
                f" / {row['est_nodes']:.0f} nodes"
            )
            if "actual_nodes" in row:
                text += (
                    f"  actual {row['actual_card']:.0f}"
                    f" / {row['actual_nodes']:.0f}"
                )
            lines.append(text)
        total = f"  total: est {self.est_nodes:.0f} nodes"
        if self.actual_nodes is not None:
            total += (
                f", actual {self.actual_nodes:.0f}"
                f" (error x{self.estimate_error():.1f})"
            )
        lines.append(total)
        return "\n".join(lines)


class EvalContext:
    """Everything one evaluation needs: the universe, the slot
    environment (values are relations or zero-argument callables), the
    planner whose cache to use, and the optional hooks described in the
    module docs."""

    def __init__(
        self,
        universe: Universe,
        env: Dict[str, object],
        planner: Optional[Planner] = None,
        weight: Optional[Callable[[str], float]] = None,
        on_replace: Optional[Callable[[object, Dict[str, str]], None]] = None,
        memo: Optional[dict] = None,
        collect: Optional[List[PlanReport]] = None,
        label: str = "",
    ) -> None:
        self.universe = universe
        self.env = env
        self.planner = planner if planner is not None else Planner()
        self.weight = weight or default_weight(universe)
        self.on_replace = on_replace
        self.memo = memo
        self.collect = collect
        self.label = label
        self._resolved: Dict[str, Relation] = {}

    def resolve(self, slot: str) -> Relation:
        rel = self._resolved.get(slot)
        if rel is None:
            try:
                value = self.env[slot]
            except KeyError:
                raise JeddError(f"no binding for IR slot {slot!r}") from None
            rel = value() if callable(value) else value
            if not isinstance(rel, Relation):
                raise JeddError(
                    f"IR slot {slot!r} bound to {type(rel).__name__}, "
                    "not a relation"
                )
            self._resolved[slot] = rel
        return rel


def _schema_sig(rel: Relation) -> tuple:
    return tuple(
        (attr.name, pd.name) for attr, pd in rel.schema.pairs
    )


def _part_label(part: Node) -> str:
    if isinstance(part, Leaf):
        return part.slot
    return f"<{type(part).__name__.lower()}>"


def run_product_plan(
    parts: Sequence[Relation],
    plan: ProductPlan,
    label: str = "",
    part_labels: Optional[Sequence[str]] = None,
    collect: Optional[List[PlanReport]] = None,
) -> Relation:
    """Execute a :class:`ProductPlan` against its part relations.

    With telemetry off and no EXPLAIN collector this is a single
    :meth:`Relation.compose_pipeline` call; otherwise the steps run one
    at a time so the actual per-step node counts can be recorded, and a
    ``plan.explain`` span (category ``"planner"``) is emitted with the
    estimates next to the actuals.
    """
    tel = _telemetry._active
    base = parts[plan.order[0]]
    if plan.base_drop:
        base = base.project_away(*plan.base_drop)
    steps = [
        (parts[s.part], list(s.on), list(s.drop)) for s in plan.steps
    ]
    if not tel.enabled and collect is None:
        return base.compose_pipeline(steps) if steps else base
    start = perf_counter()
    cur = base
    rows: List[dict] = []
    for s, triple in zip(plan.steps, steps):
        cur = cur.compose_pipeline([triple])
        rows.append(
            {
                "part": s.part,
                "on": list(s.on),
                "drop": list(s.drop),
                "est_card": s.est_card,
                "est_nodes": s.est_nodes,
                "actual_card": float(cur.size()),
                "actual_nodes": float(cur.node_count()),
            }
        )
    seconds = perf_counter() - start
    labels = list(part_labels or [f"part {i}" for i in range(len(parts))])
    report = PlanReport(
        label=label,
        optimized=plan.optimized,
        order=list(plan.order),
        part_labels=labels,
        est_card=plan.est_card,
        est_nodes=plan.est_nodes,
        steps=rows,
        actual_nodes=float(cur.node_count()),
        seconds=seconds,
    )
    if collect is not None:
        collect.append(report)
    if tel.enabled:
        tel.add_complete(
            "plan.explain",
            seconds,
            cat="planner",
            label=label,
            optimized=plan.optimized,
            order=list(plan.order),
            parts=labels,
            est_card=plan.est_card,
            est_nodes=plan.est_nodes,
            actual_nodes=report.actual_nodes,
            estimate_error=report.estimate_error(),
            steps=rows,
        )
    return cur


def evaluate(node: Node, ctx: EvalContext) -> Relation:
    """Evaluate ``node`` in ``ctx``; see the module docs."""
    memo = ctx.memo
    if memo is not None:
        mkey = (
            node.key,
            tuple(
                (ctx.resolve(slot).node, _schema_sig(ctx.resolve(slot)))
                for slot in node.slots
            ),
        )
        hit = memo.get(mkey)
        if hit is not None:
            return hit
    rel = _eval(node, ctx)
    if memo is not None:
        memo[mkey] = rel
    return rel


def _eval(node: Node, ctx: EvalContext) -> Relation:
    if isinstance(node, Leaf):
        rel = ctx.resolve(node.slot)
        if rel.schema.name_set() != node.attrs:
            raise JeddError(
                f"IR slot {node.slot!r}: bound relation has attributes "
                f"{sorted(rel.schema.name_set())}, the IR expects "
                f"{sorted(node.attrs)}"
            )
        return rel
    if isinstance(node, Product):
        parts = [evaluate(p, ctx) for p in node.parts]
        plan = ctx.planner.product_plan(
            node.key,
            ctx.universe.plan_generation,
            [p.attrs for p in node.parts],
            node.quantify,
            lambda: [
                Estimate(float(r.size()), float(r.node_count()))
                for r in parts
            ],
            ctx.weight,
        )
        return run_product_plan(
            parts,
            plan,
            label=ctx.label,
            part_labels=[_part_label(p) for p in node.parts],
            collect=ctx.collect,
        )
    if isinstance(node, Project):
        rel = evaluate(node.child, ctx)
        return rel.project_away(*sorted(node.drop)) if node.drop else rel
    if isinstance(node, Rename):
        return evaluate(node.child, ctx).rename(dict(node.mapping))
    if isinstance(node, Replace):
        child = evaluate(node.child, ctx)
        # Targets may pin attributes that are already in place (the Jedd
        # lowering passes a wrapper's complete domain map so placements
        # stay exact whatever order the planner picked); report only the
        # moves this relation actually needed.
        moved = {
            a: pd
            for a, pd in node.targets
            if child.schema.physdom(a).name != pd
        }
        rel = child.replace(dict(node.targets))
        if moved and ctx.on_replace is not None:
            ctx.on_replace(node.tag, moved)
        return rel
    if isinstance(node, Copy):
        return evaluate(node.child, ctx).copy(
            node.source,
            list(node.targets),
            list(node.physdoms) if node.physdoms is not None else None,
        )
    if isinstance(node, Match):
        left = evaluate(node.left, ctx)
        right = evaluate(node.right, ctx)
        la, ra = list(node.left_attrs), list(node.right_attrs)
        if node.keep:
            return left.join(right, la, ra)
        return left.compose(right, la, ra)
    if isinstance(node, Union):
        return evaluate(node.left, ctx) | evaluate(node.right, ctx)
    if isinstance(node, Intersect):
        return evaluate(node.left, ctx) & evaluate(node.right, ctx)
    if isinstance(node, Diff):
        return evaluate(node.left, ctx) - evaluate(node.right, ctx)
    if isinstance(node, Filter):
        return evaluate(node.child, ctx).select(dict(node.values))
    if isinstance(node, Aggregate):
        child = evaluate(node.child, ctx)
        est = estimate_aggregate(
            Estimate(float(child.size()), float(child.node_count())),
            node.group_by,
            ctx.weight,
        )
        start = perf_counter()
        result = child.aggregate(
            node.agg, node.attr, list(node.group_by)
        )
        tel = _telemetry._active
        if tel.enabled:
            tel.add_complete(
                "plan.aggregate",
                perf_counter() - start,
                cat="planner",
                label=ctx.label,
                agg=node.agg,
                group_by=list(node.group_by),
                est_card=est.card,
                actual_card=float(result.size()),
            )
        return result
    raise JeddError(f"cannot evaluate {type(node).__name__}")
