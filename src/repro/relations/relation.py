"""Database-style relations backed by decision diagrams (paper section 2).

A :class:`Relation` is an immutable set of tuples; its *schema* is an
ordered set of attributes, each stored in a physical domain of the
universe's decision diagram.  All the operations of the Jedd language
are provided:

====================  =======================================
Jedd syntax           method / operator
====================  =======================================
``x | y``             ``x | y`` (:meth:`Relation.union`)
``x & y``             ``x & y`` (:meth:`Relation.intersect`)
``x - y``             ``x - y`` (:meth:`Relation.difference`)
``x == y``            ``x == y`` (constant time on one backend)
``(a=>) x``           :meth:`Relation.project_away`
``(a=>b) x``          :meth:`Relation.rename`
``(a=>b c) x``        :meth:`Relation.copy`
``x{a} >< y{b}``      :meth:`Relation.join`
``x{a} <> y{b}``      :meth:`Relation.compose`
``new {o=>a, ...}``   :meth:`Relation.from_tuple`
``0B`` / ``1B``       :meth:`Relation.empty` / :meth:`Relation.full`
====================  =======================================

The runtime enforces the dynamic counterparts of the Figure 6 typing
rules (schema compatibility, attribute existence and distinctness) and
performs the physical-domain bookkeeping: when operand attributes are
not already in compatible physical domains, the runtime inserts the same
``replace`` operations the jeddc translator would generate, recording
them with the profiler so they can be tuned away (section 4.3).
"""

from __future__ import annotations

import warnings
from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.relations.backend import (
    DiagramBackend,
    PipelineStep,
    _backend_for,
)
from repro.telemetry import traced as _traced
from repro.relations.domain import (
    Attribute,
    JeddError,
    PhysicalDomain,
    Universe,
)

__all__ = [
    "Relation",
    "Schema",
    "WeightedRelation",
    "CsvFormatError",
    "AGGREGATE_OPS",
]

#: Aggregate operations :meth:`Relation.aggregate` understands.
AGGREGATE_OPS = ("count", "sum", "max", "min", "mean")


class CsvFormatError(JeddError):
    """Malformed rows in a CSV fact file.

    Raised by :meth:`Relation.from_csv` with a line-numbered report of
    every bad row instead of failing on the first one; ``errors`` holds
    ``(line_number, reason)`` pairs for programmatic use.
    """

    _SHOWN = 20

    def __init__(self, source: str, errors: Sequence[Tuple[int, str]]) -> None:
        self.source = source
        self.errors = list(errors)
        lines = [
            f"{source}: {len(self.errors)} malformed row(s):"
        ]
        for line_no, reason in self.errors[: self._SHOWN]:
            lines.append(f"  line {line_no}: {reason}")
        if len(self.errors) > self._SHOWN:
            lines.append(
                f"  ... and {len(self.errors) - self._SHOWN} more"
            )
        super().__init__("\n".join(lines))


def _free_physdom(
    universe: Universe, width: int, banned: Iterable[PhysicalDomain]
) -> PhysicalDomain:
    """A physical domain of ``width`` bits not in ``banned``."""
    banned_names = {pd.name for pd in banned}
    for pd in universe.physical_domains():
        if pd.bits == width and pd.name not in banned_names:
            return pd
    return universe.scratch_physdom(width)


class _MatchPlan:
    """The alignment a join/compose needs, without materialising it.

    ``targets`` maps the other operand's attribute names to the
    physical domains they must move to; ``moves``/``aligned_pairs`` are
    the same information as physdom moves and as the operand's
    post-move schema pairs.  Level sets are as for
    :meth:`DiagramBackend.match`.
    """

    __slots__ = (
        "targets", "moves", "aligned_pairs", "cmp_levels", "a_only", "b_only"
    )

    def __init__(self, targets, moves, aligned_pairs,
                 cmp_levels, a_only, b_only):
        self.targets = targets
        self.moves = moves
        self.aligned_pairs = aligned_pairs
        self.cmp_levels = cmp_levels
        self.a_only = a_only
        self.b_only = b_only


def _plan_match(
    universe: Universe,
    self_pairs: Sequence[Tuple[Attribute, PhysicalDomain]],
    other: "Relation",
    self_attrs: Sequence[str],
    other_attrs: Sequence[str],
    op: str,
) -> _MatchPlan:
    """Validate a match and plan the other operand's alignment.

    The left side is given as schema pairs rather than a relation so
    the fused pipeline can thread its evolving intermediate schema
    through without wrapping nodes in relations.
    """
    by_name = {attr.name: (attr, pd) for attr, pd in self_pairs}
    if len(self_attrs) != len(other_attrs):
        raise JeddError(f"{op}: attribute lists differ in length")
    if len(set(self_attrs)) != len(self_attrs) or len(
        set(other_attrs)
    ) != len(other_attrs):
        raise JeddError(f"{op}: repeated attribute in comparison list")
    for name in self_attrs:
        if name not in by_name:
            raise JeddError(f"{op}: {name!r} not in left schema")
    for name in other_attrs:
        if name not in other.schema:
            raise JeddError(f"{op}: {name!r} not in right schema")
    for a, b in zip(self_attrs, other_attrs):
        da = by_name[a][0].domain
        db = other.schema.attribute(b).domain
        if da is not db:
            raise JeddError(
                f"{op}: cannot compare {a} ({da.name}) with "
                f"{b} ({db.name})"
            )
    # Move the compared attributes of `other` into the left side's
    # physical domains, and its private attributes out of any domain
    # the left side uses.
    targets: Dict[str, PhysicalDomain] = {}
    for a, b in zip(self_attrs, other_attrs):
        targets[b] = by_name[a][1]
    self_pds = {pd.name for _, pd in self_pairs}
    used = [pd for _, pd in self_pairs]
    used.extend(pd for _, pd in other.schema.pairs)
    used.extend(targets.values())
    for attr, pd in other.schema.pairs:
        if attr.name in targets:
            continue
        if pd.name in self_pds:
            fresh = _free_physdom(universe, pd.bits, used)
            targets[attr.name] = fresh
            used.append(fresh)
    moves = []
    aligned_pairs: List[Tuple[Attribute, PhysicalDomain]] = []
    for attr, pd in other.schema.pairs:
        tgt = targets.get(attr.name, pd)
        aligned_pairs.append((attr, tgt))
        if tgt is not pd:
            moves.append((pd, tgt))
    cmp_levels: List[int] = []
    for a in self_attrs:
        cmp_levels.extend(by_name[a][1].levels)
    cmp_set = set(cmp_levels)
    a_only = [
        l for _, pd in self_pairs for l in pd.levels if l not in cmp_set
    ]
    b_only = [
        l for _, pd in aligned_pairs for l in pd.levels if l not in cmp_set
    ]
    return _MatchPlan(targets, moves, aligned_pairs,
                      cmp_levels, a_only, b_only)


class Schema:
    """An ordered mapping of attributes to physical domains."""

    __slots__ = ("pairs", "_by_name")

    def __init__(
        self, pairs: Sequence[Tuple[Attribute, PhysicalDomain]]
    ) -> None:
        self.pairs: Tuple[Tuple[Attribute, PhysicalDomain], ...] = tuple(pairs)
        self._by_name: Dict[str, Tuple[Attribute, PhysicalDomain]] = {}
        used_pds = set()
        for attr, pd in self.pairs:
            if attr.name in self._by_name:
                raise JeddError(
                    f"attribute {attr.name!r} appears twice in schema"
                )
            if pd.name in used_pds:
                raise JeddError(
                    f"physical domain {pd.name} holds two attributes of "
                    "one relation (conflict constraint violated)"
                )
            if pd.bits < attr.domain.bits:
                raise JeddError(
                    f"physical domain {pd.name} ({pd.bits} bits) too small "
                    f"for domain {attr.domain.name} ({attr.domain.bits} bits)"
                )
            used_pds.add(pd.name)
            self._by_name[attr.name] = (attr, pd)

    def names(self) -> Tuple[str, ...]:
        """Attribute names in schema order."""
        return tuple(attr.name for attr, _ in self.pairs)

    def name_set(self) -> frozenset:
        """Attribute names as a set (schemas compare as sets)."""
        return frozenset(self._by_name)

    def attribute(self, name: str) -> Attribute:
        """The attribute object for ``name``."""
        return self._entry(name)[0]

    def physdom(self, name: str) -> PhysicalDomain:
        """The physical domain storing attribute ``name``."""
        return self._entry(name)[1]

    def _entry(self, name: str) -> Tuple[Attribute, PhysicalDomain]:
        try:
            return self._by_name[name]
        except KeyError:
            raise JeddError(f"no attribute {name!r} in schema") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self.pairs)

    def levels(self) -> List[int]:
        """All diagram levels used by this schema."""
        out: List[int] = []
        for _, pd in self.pairs:
            out.extend(pd.levels)
        return out

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{attr.name}:{pd.name}" for attr, pd in self.pairs
        )
        return f"<{inner}>"


class Relation:
    """An immutable relation value.

    Construct relations with the classmethods (:meth:`empty`,
    :meth:`full`, :meth:`from_tuple`, :meth:`from_tuples`) — or the
    ``Universe`` conveniences — and combine them with the operators.  A
    relation holds a reference-counted diagram node; the count is
    dropped when the Python object dies, when the enclosing
    :meth:`Universe.scope` exits, or eagerly via :meth:`dispose` (also
    available as a ``with`` block).
    """

    __slots__ = ("universe", "backend", "schema", "node", "_released")

    #: Optional profiler hook, set by ``repro.profiler``; receives
    #: (operation name, relation, elapsed seconds) for each operation.
    profiler = None

    def __init__(
        self,
        universe: Universe,
        schema: Schema,
        node: int,
        backend: Optional[DiagramBackend] = None,
    ) -> None:
        self.universe = universe
        self.backend = backend or _backend_for(universe.manager)
        self.schema = schema
        self.node = self.backend.ref(node)
        self._released = False
        universe._note_relation(self)

    def __del__(self) -> None:
        self.dispose()

    def dispose(self) -> None:
        """Drop this relation's node reference (idempotent).

        The relation must not be used afterwards: the next garbage
        collection may reclaim its nodes.  Usually there is no need to
        call this directly — use :meth:`Universe.scope` (or a ``with``
        block over the relation) for deterministic bulk release.
        """
        if not self._released:
            self._released = True
            try:
                self.backend.deref(self.node)
            except Exception:
                pass  # interpreter shutdown may have torn down the manager

    def release(self) -> None:
        """Deprecated alias of :meth:`dispose`."""
        warnings.warn(
            "Relation.release() is deprecated; use dispose(), a `with`"
            " block, or Universe.scope()",
            DeprecationWarning,
            stacklevel=2,
        )
        self.dispose()

    @property
    def disposed(self) -> bool:
        """Whether this relation's node reference has been dropped."""
        return self._released

    def __enter__(self) -> "Relation":
        return self

    def __exit__(self, *exc) -> bool:
        self.dispose()
        return False

    def _wrap(self, schema: Schema, node: int) -> "Relation":
        rel = Relation(self.universe, schema, node, self.backend)
        self.backend.maybe_gc()
        return rel

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def _make_schema(
        cls,
        universe: Universe,
        attributes: Sequence[Attribute | str],
        physdoms: Optional[Sequence[PhysicalDomain | str]] = None,
    ) -> Schema:
        attrs = [
            universe.get_attribute(a) if isinstance(a, str) else a
            for a in attributes
        ]
        if physdoms is None:
            pds = [
                universe.scratch_physdom(attr.domain.bits) for attr in attrs
            ]
        else:
            if len(physdoms) != len(attrs):
                raise JeddError("one physical domain per attribute required")
            pds = [
                universe.get_physdom(p) if isinstance(p, str) else p
                for p in physdoms
            ]
        return Schema(list(zip(attrs, pds)))

    @classmethod
    def empty(
        cls,
        universe: Universe,
        attributes: Sequence[Attribute | str],
        physdoms: Optional[Sequence[PhysicalDomain | str]] = None,
    ) -> "Relation":
        """The constant ``0B`` at a concrete schema."""
        schema = cls._make_schema(universe, attributes, physdoms)
        backend = _backend_for(universe.manager)
        return cls(universe, schema, backend.empty(), backend)

    @classmethod
    def full(
        cls,
        universe: Universe,
        attributes: Sequence[Attribute | str],
        physdoms: Optional[Sequence[PhysicalDomain | str]] = None,
    ) -> "Relation":
        """The constant ``1B`` (all possible tuples) at a concrete schema."""
        schema = cls._make_schema(universe, attributes, physdoms)
        backend = _backend_for(universe.manager)
        return cls(universe, schema, backend.full(schema.levels()), backend)

    @classmethod
    def from_tuple(
        cls,
        universe: Universe,
        values: Dict[Attribute | str, Hashable],
        physdoms: Optional[Dict[str, PhysicalDomain | str]] = None,
    ) -> "Relation":
        """Jedd's ``new { obj => attribute, ... }`` single-tuple literal."""
        attrs = [
            universe.get_attribute(a) if isinstance(a, str) else a
            for a in values
        ]
        pd_list: Optional[List[PhysicalDomain | str]] = None
        if physdoms is not None:
            pd_list = []
            for attr in attrs:
                pd = physdoms.get(attr.name)
                if pd is None:
                    raise JeddError(
                        f"no physical domain given for {attr.name!r}"
                    )
                pd_list.append(pd)
        schema = cls._make_schema(universe, attrs, pd_list)
        backend = _backend_for(universe.manager)
        assignment: Dict[int, bool] = {}
        for (attr, pd), obj in zip(schema.pairs, values.values()):
            assignment.update(
                universe.encode_bits(pd, attr.domain.intern(obj))
            )
        return cls(universe, schema, backend.cube(assignment), backend)

    @classmethod
    def from_tuples(
        cls,
        universe: Universe,
        attributes: Sequence[Attribute | str],
        rows: Iterable[Sequence[Hashable]],
        physdoms: Optional[Sequence[PhysicalDomain | str]] = None,
    ) -> "Relation":
        """Bulk constructor: union of one-tuple literals, but in one pass."""
        schema = cls._make_schema(universe, attributes, physdoms)
        backend = _backend_for(universe.manager)
        node = backend.empty()
        for row in rows:
            if len(row) != len(schema):
                raise JeddError(
                    f"row {row!r} does not match schema {schema!r}"
                )
            assignment: Dict[int, bool] = {}
            for (attr, pd), obj in zip(schema.pairs, row):
                assignment.update(
                    universe.encode_bits(pd, attr.domain.intern(obj))
                )
            node = backend.union(node, backend.cube(assignment))
        return cls(universe, schema, node, backend)

    @classmethod
    def from_csv(
        cls,
        universe: Universe,
        source,
        attributes: Sequence[Attribute | str],
        physdoms: Optional[Sequence[PhysicalDomain | str]] = None,
        *,
        delimiter: str = ",",
        has_header: bool = False,
        converters: Optional[Dict[str, "callable"]] = None,
        on_malformed: str = "error",
    ) -> "Relation":
        """Load a relation from a CSV fact file, interning objects.

        ``source`` is a path or an open text file.  Fields become the
        tuple objects directly (stripped strings), optionally passed
        through per-attribute ``converters`` (e.g. ``{"weight": int}``).
        With ``has_header`` the first row names the columns and they may
        appear in any order; otherwise columns follow ``attributes``.

        Malformed rows — wrong field count, converter failures, domain
        overflow — are collected and reported *with line numbers* in a
        single :class:`CsvFormatError` (``on_malformed="error"``, the
        default), or skipped (``"skip"``).  Blank lines are ignored.
        """
        import csv as _csv

        if on_malformed not in ("error", "skip"):
            raise JeddError(
                f"on_malformed must be 'error' or 'skip', "
                f"not {on_malformed!r}"
            )
        schema = cls._make_schema(universe, attributes, physdoms)
        names = [attr.name for attr, _ in schema.pairs]
        convs = [(converters or {}).get(n) for n in names]
        if hasattr(source, "read"):
            fp = source
            close = False
            label = getattr(source, "name", "<csv>")
        else:
            fp = open(source, "r", newline="")
            close = True
            label = str(source)
        backend = _backend_for(universe.manager)
        node = backend.empty()
        errors: List[Tuple[int, str]] = []
        try:
            reader = _csv.reader(fp, delimiter=delimiter)
            order: Optional[List[int]] = None
            for line_no, row in enumerate(reader, start=1):
                if has_header and line_no == 1:
                    header = [f.strip() for f in row]
                    missing = [n for n in names if n not in header]
                    if missing:
                        raise JeddError(
                            f"{label}: header {header} is missing "
                            f"column(s) {missing}"
                        )
                    order = [header.index(n) for n in names]
                    continue
                if not row or all(not f.strip() for f in row):
                    continue
                if order is not None:
                    if max(order) >= len(row):
                        errors.append(
                            (line_no,
                             f"expected at least {max(order) + 1} "
                             f"field(s), got {len(row)}")
                        )
                        continue
                    fields = [row[i] for i in order]
                elif len(row) != len(names):
                    errors.append(
                        (line_no,
                         f"expected {len(names)} field(s), got {len(row)}")
                    )
                    continue
                else:
                    fields = list(row)
                assignment: Dict[int, bool] = {}
                try:
                    for (attr, pd), conv, field in zip(
                        schema.pairs, convs, fields
                    ):
                        obj = field.strip()
                        if conv is not None:
                            obj = conv(obj)
                        assignment.update(
                            universe.encode_bits(
                                pd, attr.domain.intern(obj)
                            )
                        )
                except (JeddError, ValueError, TypeError) as exc:
                    errors.append((line_no, str(exc)))
                    continue
                node = backend.union(node, backend.cube(assignment))
        finally:
            if close:
                fp.close()
        if errors and on_malformed == "error":
            raise CsvFormatError(label, errors)
        return cls(universe, schema, node, backend)

    # ------------------------------------------------------------------
    # Physical domain movement
    # ------------------------------------------------------------------

    @_traced("relation.replace", "relation")
    def replace(
        self, physdoms: Dict[str, PhysicalDomain | str]
    ) -> "Relation":
        """Move attributes to the given physical domains (Jedd ``replace``).

        This is the explicit form; the other operations call it
        implicitly when operands need aligning, exactly where the
        translator would insert replace operations.
        """
        moves = []
        new_pairs = []
        for attr, pd in self.schema.pairs:
            target = physdoms.get(attr.name)
            if target is None:
                new_pairs.append((attr, pd))
                continue
            if isinstance(target, str):
                target = self.universe.get_physdom(target)
            new_pairs.append((attr, target))
            if target is not pd:
                moves.append((pd, target))
        if not moves:
            return self
        perm = self.universe.move_permutation(moves)
        node = self.backend.replace(self.node, perm)
        if Relation.profiler is not None:
            Relation.profiler.record_replace(self, perm)
        return self._wrap(Schema(new_pairs), node)

    def ordered(self, names: Sequence[str]) -> "Relation":
        """The same relation with its schema columns in ``names`` order.

        Pure metadata: the diagram encodes attributes by physical
        domain, so column order only affects how :meth:`tuples`
        enumerates — but an assignment target declared ``<a, b, c>``
        must list tuples as ``(a, b, c)`` no matter which join order
        the planner picked for the right-hand side.  ``names`` must be
        exactly this relation's attribute names.
        """
        current = [attr.name for attr, _ in self.schema.pairs]
        names = list(names)
        if names == current:
            return self
        if sorted(names) != sorted(current):
            raise JeddError(
                f"ordered: {names} is not a permutation of {current}"
            )
        by_name = {attr.name: (attr, pd) for attr, pd in self.schema.pairs}
        return self._wrap(
            Schema([by_name[n] for n in names]), self.node
        )

    def _align_to(self, other: "Relation") -> "Relation":
        """Return ``other`` moved into this relation's physical domains."""
        targets = {
            attr.name: pd
            for attr, pd in self.schema.pairs
            if attr.name in other.schema
        }
        return other.replace(targets)

    def _free_physdom(
        self, width: int, banned: Iterable[PhysicalDomain]
    ) -> PhysicalDomain:
        """A physical domain of ``width`` bits not in ``banned``."""
        return _free_physdom(self.universe, width, banned)

    # ------------------------------------------------------------------
    # Set operations ([SetOp], [Assign], [Compare] of Figure 6)
    # ------------------------------------------------------------------

    def _check_same_schema(self, other: "Relation", op: str) -> None:
        if not isinstance(other, Relation):
            raise TypeError(f"{op}: not a relation: {other!r}")
        if self.schema.name_set() != other.schema.name_set():
            raise JeddError(
                f"{op}: schemas differ: {self.schema!r} vs {other.schema!r}"
            )

    @_traced("relation.union", "relation")
    def union(self, other: "Relation") -> "Relation":
        """All tuples in either relation (Jedd ``|``)."""
        self._check_same_schema(other, "union")
        aligned = self._align_to(other)
        return self._wrap(
            self.schema, self.backend.union(self.node, aligned.node)
        )

    @_traced("relation.intersect", "relation")
    def intersect(self, other: "Relation") -> "Relation":
        """Tuples in both relations (Jedd ``&``)."""
        self._check_same_schema(other, "intersect")
        aligned = self._align_to(other)
        return self._wrap(
            self.schema, self.backend.intersect(self.node, aligned.node)
        )

    @_traced("relation.difference", "relation")
    def difference(self, other: "Relation") -> "Relation":
        """Tuples in this relation but not the other (Jedd ``-``)."""
        self._check_same_schema(other, "difference")
        aligned = self._align_to(other)
        return self._wrap(
            self.schema, self.backend.diff(self.node, aligned.node)
        )

    # Operators delegate through the attribute lookup (rather than
    # aliasing the functions) so profiler instrumentation sees them.
    def __or__(self, other: "Relation") -> "Relation":
        return self.union(other)

    def __and__(self, other: "Relation") -> "Relation":
        return self.intersect(other)

    def __sub__(self, other: "Relation") -> "Relation":
        return self.difference(other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        if (
            self.universe is not other.universe
            or type(self.backend) is not type(other.backend)
        ):
            # Nodes of different universes/backends are not comparable;
            # returning NotImplemented (rather than raising out of the
            # alignment machinery) lets Python fall back to identity,
            # so mixed comparisons are False instead of an error.
            return NotImplemented
        if self.schema.name_set() != other.schema.name_set():
            return False
        aligned = self._align_to(other)
        return self.node == aligned.node

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        # Equal relations share a universe, so including its identity
        # keeps the hash/eq contract while separating same-named
        # schemas from unrelated universes.
        return hash((id(self.universe), self.schema.name_set()))

    def is_empty(self) -> bool:
        """Constant-time emptiness test (``x == 0B``)."""
        return self.node == self.backend.empty()

    def __bool__(self) -> bool:
        return not self.is_empty()

    # ------------------------------------------------------------------
    # Attribute operations ([Project], [Rename], [Copy])
    # ------------------------------------------------------------------

    @_traced("relation.project_away", "relation")
    def project_away(self, *names: str) -> "Relation":
        """Remove attributes (Jedd ``(a=>) x``); may merge tuples."""
        levels: List[int] = []
        remaining = []
        to_drop = set(names)
        for attr, pd in self.schema.pairs:
            if attr.name in to_drop:
                levels.extend(pd.levels)
                to_drop.discard(attr.name)
            else:
                remaining.append((attr, pd))
        if to_drop:
            raise JeddError(f"project: no attribute(s) {sorted(to_drop)}")
        node = self.backend.project(self.node, levels)
        return self._wrap(Schema(remaining), node)

    def project_onto(self, *names: str) -> "Relation":
        """Keep only the named attributes."""
        keep = set(names)
        missing = keep - set(self.schema.names())
        if missing:
            raise JeddError(f"project: no attribute(s) {sorted(missing)}")
        drop = [n for n in self.schema.names() if n not in keep]
        return self.project_away(*drop) if drop else self

    @_traced("relation.rename", "relation")
    def rename(self, mapping: Dict[str, Attribute | str]) -> "Relation":
        """Substitute attributes (Jedd ``(a=>b) x``); no BDD change."""
        new_pairs = []
        pending = dict(mapping)
        for attr, pd in self.schema.pairs:
            target = pending.pop(attr.name, None)
            if target is None:
                new_pairs.append((attr, pd))
                continue
            new_attr = (
                self.universe.get_attribute(target)
                if isinstance(target, str)
                else target
            )
            if new_attr.domain is not attr.domain:
                raise JeddError(
                    f"rename {attr.name}=>{new_attr.name}: domains differ "
                    f"({attr.domain.name} vs {new_attr.domain.name})"
                )
            new_pairs.append((new_attr, pd))
        if pending:
            raise JeddError(
                f"rename: no attribute(s) {sorted(pending)} in schema"
            )
        return self._wrap(Schema(new_pairs), self.node)

    @_traced("relation.copy", "relation")
    def copy(
        self,
        source: str,
        names: Sequence[Attribute | str],
        physdoms: Optional[Sequence[PhysicalDomain | str]] = None,
    ) -> "Relation":
        """Attribute copying (Jedd ``(a=>b c) x``).

        The source attribute is replaced by the given attributes, each
        holding the same object in every tuple.  The first copy stays in
        the source's physical domain; further copies go to the physical
        domains given (or to free ones).
        """
        if len(names) < 2:
            raise JeddError("copy needs at least two target attributes")
        src_attr = self.schema.attribute(source)
        src_pd = self.schema.physdom(source)
        targets = [
            self.universe.get_attribute(n) if isinstance(n, str) else n
            for n in names
        ]
        for t in targets:
            if t.domain is not src_attr.domain:
                raise JeddError(
                    f"copy target {t.name} has domain {t.domain.name}, "
                    f"expected {src_attr.domain.name}"
                )
            if t.name != source and t.name in self.schema:
                raise JeddError(f"copy target {t.name} already in schema")
        if len({t.name for t in targets}) != len(targets):
            raise JeddError("copy targets must be distinct")
        # Physical domains for the extra copies.
        if physdoms is not None:
            if len(physdoms) != len(targets) - 1:
                raise JeddError(
                    "copy: one physical domain per extra copy required"
                )
            extra_pds = [
                self.universe.get_physdom(p) if isinstance(p, str) else p
                for p in physdoms
            ]
        else:
            extra_pds = []
            used = [pd for _, pd in self.schema.pairs]
            for _ in targets[1:]:
                pd = self._free_physdom(src_pd.bits, used)
                extra_pds.append(pd)
                used.append(pd)
        # Conceptually a join with the identity relation {(v, v)} matching
        # on the source attribute; match() handles backend differences
        # (the ZDD encoding needs explicit don't-care expansion).
        node = self.node
        values = src_attr.domain.values()
        used_levels = self.schema.levels()
        for pd in extra_pds:
            eq = self.backend.equality(src_pd.levels, pd.levels, values)
            a_only = [l for l in used_levels if l not in src_pd.levels]
            node = self.backend.match(
                node, eq, src_pd.levels, a_only, pd.levels, False
            )
            used_levels = used_levels + pd.levels
        new_pairs = []
        for attr, pd in self.schema.pairs:
            if attr.name == source:
                new_pairs.append((targets[0], src_pd))
                for t, tpd in zip(targets[1:], extra_pds):
                    new_pairs.append((t, tpd))
            else:
                new_pairs.append((attr, pd))
        return self._wrap(Schema(new_pairs), node)

    # ------------------------------------------------------------------
    # Join and composition ([Join], [Compose])
    # ------------------------------------------------------------------

    def _match_setup(
        self,
        other: "Relation",
        self_attrs: Sequence[str],
        other_attrs: Sequence[str],
        op: str,
    ) -> Tuple["Relation", List[int], List[int], List[int]]:
        plan = _plan_match(
            self.universe, self.schema.pairs, other,
            self_attrs, other_attrs, op,
        )
        aligned = other.replace(plan.targets)
        return aligned, plan.cmp_levels, plan.a_only, plan.b_only

    @_traced("relation.join", "relation")
    def join(
        self,
        other: "Relation",
        self_attrs: Sequence[str],
        other_attrs: Sequence[str],
    ) -> "Relation":
        """Jedd ``x{a1,...} >< y{b1,...}``.

        Pairs of tuples matching on the compared attributes are merged;
        the compared attributes are kept (under the left relation's
        names).  The attribute sets of the result operands must be
        disjoint ([Join] in Figure 6).
        """
        overlap = self.schema.name_set() & (
            other.schema.name_set() - frozenset(other_attrs)
        )
        if overlap:
            raise JeddError(
                f"join: attributes {sorted(overlap)} appear on both sides"
            )
        aligned, cmp_levels, a_only, b_only = self._match_setup(
            other, self_attrs, other_attrs, "join"
        )
        node = self.backend.match(
            self.node, aligned.node, cmp_levels, a_only, b_only, False
        )
        new_pairs = list(self.schema.pairs)
        compared = set(other_attrs)
        for attr, pd in aligned.schema.pairs:
            if attr.name not in compared:
                new_pairs.append((attr, pd))
        return self._wrap(Schema(new_pairs), node)

    @_traced("relation.compose", "relation")
    def compose(
        self,
        other: "Relation",
        self_attrs: Sequence[str],
        other_attrs: Sequence[str],
    ) -> "Relation":
        """Jedd ``x{a1,...} <> y{b1,...}``.

        Like :meth:`join` but the compared attributes are projected away
        -- implemented with the fused conjunction+quantification
        operation rather than a join followed by a projection.
        """
        self_rest = self.schema.name_set() - frozenset(self_attrs)
        other_rest = other.schema.name_set() - frozenset(other_attrs)
        overlap = self_rest & other_rest
        if overlap:
            raise JeddError(
                f"compose: attributes {sorted(overlap)} appear on both sides"
            )
        aligned, cmp_levels, a_only, b_only = self._match_setup(
            other, self_attrs, other_attrs, "compose"
        )
        node = self.backend.match(
            self.node, aligned.node, cmp_levels, a_only, b_only, True
        )
        new_pairs = [
            (attr, pd)
            for attr, pd in self.schema.pairs
            if attr.name not in set(self_attrs)
        ]
        compared = set(other_attrs)
        for attr, pd in aligned.schema.pairs:
            if attr.name not in compared:
                new_pairs.append((attr, pd))
        return self._wrap(Schema(new_pairs), node)

    @_traced("relation.compose_pipeline", "relation")
    def compose_pipeline(
        self,
        steps: Sequence[Tuple["Relation", Sequence[str], Sequence[str]]],
    ) -> "Relation":
        """Fused multi-way relational product.

        ``steps`` is a sequence of ``(other, on, drop)`` triples: at
        each step the running result is matched with ``other`` on the
        attribute names ``on`` (present under the same name on both
        sides), then the attributes in ``drop`` are projected away.
        Only attributes no later step (and no consumer) needs should be
        dropped — shared attributes are *not* quantified automatically
        the way :meth:`compose` does.

        On the BDD backend each step lowers to a single fused
        ``and_exist`` kernel call plus at most one variable permutation
        (:meth:`DiagramBackend.relprod_pipeline`); no intermediate
        relations are materialised.  This is the workhorse of the
        semi-naive fixpoint engine's rule bodies.
        """
        cur_pairs: List[Tuple[Attribute, PhysicalDomain]] = list(
            self.schema.pairs
        )
        plan_steps: List[PipelineStep] = []
        for other, on, drop in steps:
            if not isinstance(other, Relation):
                raise TypeError(
                    f"compose_pipeline: not a relation: {other!r}"
                )
            if other.universe is not self.universe or type(
                other.backend
            ) is not type(self.backend):
                raise JeddError(
                    "compose_pipeline: operands come from different "
                    "universes/backends"
                )
            on = list(on)
            drop = list(drop)
            cur_names = {attr.name for attr, _ in cur_pairs}
            overlap = (
                other.schema.name_set() - frozenset(on)
            ) & cur_names
            if overlap:
                raise JeddError(
                    f"compose_pipeline: attributes {sorted(overlap)} "
                    "appear on both sides"
                )
            plan = _plan_match(
                self.universe, cur_pairs, other, on, on,
                "compose_pipeline",
            )
            on_set = set(on)
            combined = cur_pairs + [
                (attr, pd)
                for attr, pd in plan.aligned_pairs
                if attr.name not in on_set
            ]
            drop_set = set(drop)
            missing = drop_set - {attr.name for attr, _ in combined}
            if missing:
                raise JeddError(
                    f"compose_pipeline: cannot drop {sorted(missing)}: "
                    "not in the combined schema"
                )
            exist_levels = [
                l
                for attr, pd in combined
                if attr.name in drop_set
                for l in pd.levels
            ]
            plan_steps.append(
                PipelineStep(
                    b=other.node,
                    cmp_levels=plan.cmp_levels,
                    a_only_levels=plan.a_only,
                    b_only_levels=plan.b_only,
                    exist_levels=exist_levels,
                    b_perm=self.universe.move_permutation(plan.moves),
                )
            )
            cur_pairs = [
                (attr, pd)
                for attr, pd in combined
                if attr.name not in drop_set
            ]
        node = self.backend.relprod_pipeline(self.node, plan_steps)
        return self._wrap(Schema(cur_pairs), node)

    def select(self, values: Dict[str, Hashable]) -> "Relation":
        """Selection: tuples with the given objects in certain attributes.

        Jedd has no dedicated selection operation; section 2.2.4
        explains it is "most easily implemented by constructing a
        relation containing the desired objects, and joining it with the
        relation of interest" -- which is exactly what this convenience
        method does.
        """
        if not values:
            return self
        attrs = list(values)
        for name in attrs:
            if name not in self.schema:
                raise JeddError(f"select: no attribute {name!r} in schema")
        pds = {name: self.schema.physdom(name) for name in attrs}
        selector = Relation.from_tuple(self.universe, values, pds)
        return self.join(selector, attrs, attrs)

    # ------------------------------------------------------------------
    # Extraction (section 2.3)
    # ------------------------------------------------------------------

    def count(self) -> int:
        """Exact tuple cardinality via the kernel's model counter.

        Satcount walks the diagram once — O(nodes) — where materialising
        :meth:`tuples` is O(result).  Prefer this (or :meth:`size`,
        its alias) over ``len(list(r.tuples()))`` for cardinality
        checks.
        """
        return self.backend.count(self.node, self.schema.levels())

    def size(self) -> int:
        """Number of tuples in the relation (alias of :meth:`count`)."""
        return self.count()

    def __len__(self) -> int:
        return self.count()

    def tuples(self) -> Iterator[Tuple[Hashable, ...]]:
        """Iterate tuples as object tuples in schema order."""
        levels = self.schema.levels()
        for assignment in self.backend.all_sat(self.node, levels):
            row = []
            for attr, pd in self.schema.pairs:
                idx = self.universe.decode_bits(pd, assignment)
                row.append(attr.domain.object_of(idx))
            yield tuple(row)

    def __iter__(self) -> Iterator:
        """Single-attribute iterator (objects) or tuple iterator.

        Mirrors the two ``java.util.Iterator`` flavours of section 2.3.
        """
        if len(self.schema) == 1:
            return (row[0] for row in self.tuples())
        return self.tuples()

    def __str__(self) -> str:
        """Tabular rendering, the Jedd ``toString()`` debugging aid."""
        names = self.schema.names()
        rows = [tuple(str(v) for v in row) for row in self.tuples()]
        rows.sort()
        widths = [
            max(len(n), *(len(r[i]) for r in rows)) if rows else len(n)
            for i, n in enumerate(names)
        ]
        header = "  ".join(n.ljust(w) for n, w in zip(names, widths))
        lines = [header, "-" * len(header)]
        for row in rows:
            lines.append(
                "  ".join(v.ljust(w) for v, w in zip(row, widths))
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Relation({self.schema!r}, {self.size()} tuples, "
            f"{self.backend.node_count(self.node)} nodes)"
        )

    # ------------------------------------------------------------------
    # Aggregates (quantitative extension; ROADMAP "MTBDD/ADD backend")
    # ------------------------------------------------------------------

    @_traced("relation.aggregate", "relation")
    def aggregate(
        self,
        agg: str,
        attr: Optional[str] = None,
        group_by: Sequence[str] = (),
    ) -> "WeightedRelation":
        """Grouped aggregation, the codd-style ``count/sum/max/min/mean``.

        The relation is first projected onto ``{attr} | group_by``
        (boolean dedup, so repeated source tuples never double-count),
        then per distinct ``group_by`` tuple:

        ``count``
            number of distinct ``attr`` values (all non-group attributes
            when ``attr`` is omitted);
        ``sum`` / ``max`` / ``min``
            over the numeric objects of ``attr``;
        ``mean``
            ``sum / count`` (Python true division, identical in both
            execution paths).

        On the multi-terminal backend the grouping runs as diagram
        abstraction — ``count``/``sum`` are ``add``-quantification of
        the (value-weighted) relation over the non-group levels,
        ``max``/``min`` their idempotent counterparts; other backends
        fall back to tuple materialisation with identical results.
        Returns a :class:`WeightedRelation` keyed by the group columns.
        """
        if agg not in AGGREGATE_OPS:
            raise JeddError(
                f"unknown aggregate {agg!r} (expected one of "
                f"{', '.join(AGGREGATE_OPS)})"
            )
        group_by = list(group_by)
        if len(set(group_by)) != len(group_by):
            raise JeddError("aggregate: repeated group-by attribute")
        for name in group_by:
            if name not in self.schema:
                raise JeddError(
                    f"aggregate: no attribute {name!r} in schema"
                )
        if attr is not None:
            if attr not in self.schema:
                raise JeddError(
                    f"aggregate: no attribute {attr!r} in schema"
                )
            if attr in group_by:
                raise JeddError(
                    f"aggregate: {attr!r} cannot be both aggregated "
                    "and grouped"
                )
        elif agg != "count":
            raise JeddError(f"aggregate {agg!r} needs an attribute")
        needed = set(group_by)
        needed |= {attr} if attr is not None else set(self.schema.names())
        base = self.project_onto(*needed)
        result_schema = Schema(
            [
                (base.schema.attribute(n), base.schema.physdom(n))
                for n in group_by
            ]
        )
        if self.backend.supports_weights():
            weights = base._aggregate_diagram(agg, attr, group_by)
        else:
            weights = base._aggregate_tuples(agg, attr, group_by)
        return WeightedRelation(
            self.universe, result_schema, weights=weights
        )

    def _aggregate_diagram(self, agg, attr, group_by):
        """Grouped aggregation via MTBDD abstraction operators."""
        be = self.backend
        u = self.universe
        group_levels = [
            l for n in group_by for l in self.schema.physdom(n).levels
        ]
        group_set = set(group_levels)
        other_levels = [
            l for l in self.schema.levels() if l not in group_set
        ]
        count_node = None
        value_node = None
        if agg in ("count", "mean"):
            count_node = be.abstract("add", self.node, other_levels)
        if attr is not None and agg != "count":
            pd = self.schema.physdom(attr)
            dom = self.schema.attribute(attr).domain
            values = be.empty()
            for idx in dom.values():
                obj = dom.object_of(idx)
                if not isinstance(obj, (int, float)):
                    raise JeddError(
                        f"aggregate {agg!r}: attribute {attr!r} holds "
                        f"non-numeric object {obj!r}"
                    )
                weighted_cube = be.apply(
                    "mul",
                    be.cube(u.encode_bits(pd, idx)),
                    be.terminal(obj),
                )
                values = be.apply("add", values, weighted_cube)
            if agg in ("sum", "mean"):
                masked = be.ite(self.node, values, be.terminal(0))
                value_node = be.abstract("add", masked, other_levels)
            else:
                # Absent tuples must not win the max/min: mask them to
                # the operation's identity; absent *groups* are never
                # enumerated, so the sentinel is never read.
                sentinel = float("-inf") if agg == "max" else float("inf")
                masked = be.ite(self.node, values, be.terminal(sentinel))
                value_node = be.abstract(agg, masked, other_levels)
        group_node = be.abstract("or", self.node, other_levels)
        group_pairs = [
            (self.schema.attribute(n), self.schema.physdom(n))
            for n in group_by
        ]
        weights = {}
        for assignment in be.all_sat(group_node, group_levels):
            key = tuple(
                attr_.domain.object_of(u.decode_bits(pd_, assignment))
                for attr_, pd_ in group_pairs
            )
            if agg == "count":
                weights[key] = be.evaluate(count_node, assignment)
            elif agg == "mean":
                weights[key] = be.evaluate(
                    value_node, assignment
                ) / be.evaluate(count_node, assignment)
            else:
                weights[key] = be.evaluate(value_node, assignment)
        return weights

    def _aggregate_tuples(self, agg, attr, group_by):
        """Portable fallback: materialise tuples and aggregate in dicts
        (this is also, verbatim, the differential tests' oracle
        semantics)."""
        names = list(self.schema.names())
        gidx = [names.index(n) for n in group_by]
        aidx = names.index(attr) if attr is not None else None
        groups: Dict[tuple, list] = {}
        for row in self.tuples():
            key = tuple(row[i] for i in gidx)
            groups.setdefault(key, []).append(row)
        weights = {}
        for key, rows in groups.items():
            if agg == "count":
                weights[key] = len(rows)
                continue
            values = []
            for row in rows:
                obj = row[aidx]
                if not isinstance(obj, (int, float)):
                    raise JeddError(
                        f"aggregate {agg!r}: attribute {attr!r} holds "
                        f"non-numeric object {obj!r}"
                    )
                values.append(obj)
            if agg == "sum":
                weights[key] = sum(values)
            elif agg == "max":
                weights[key] = max(values)
            elif agg == "min":
                weights[key] = min(values)
            else:  # mean
                weights[key] = sum(values) / len(values)
        return weights

    # ------------------------------------------------------------------
    # Profiling helpers
    # ------------------------------------------------------------------

    def node_count(self) -> int:
        """Number of diagram nodes representing this relation."""
        return self.backend.node_count(self.node)

    def shape(self) -> List[int]:
        """Per-level node counts (the profiler's BDD shape, section 4.3)."""
        return self.backend.shape(self.node)


class WeightedRelation:
    """A relation mapping tuples to numeric weights.

    Two interchangeable representations behind one API: *diagram-backed*
    (an MTBDD whose terminals carry the weights — only on the
    multi-terminal backend) and *table-backed* (a plain dict, the
    portable fallback and the form aggregate results take).  A weight of
    0 means the tuple is absent — the diagram encoding cannot
    distinguish the two, so the table form drops zero net weights for
    consistency.

    Build one with :meth:`from_weighted_tuples` (repeated tuples sum
    their weights) or receive one from :meth:`Relation.aggregate`.
    """

    __slots__ = (
        "universe", "schema", "backend", "node", "_weights", "_released"
    )

    def __init__(
        self,
        universe: Universe,
        schema: Schema,
        node: Optional[int] = None,
        weights: Optional[Dict[tuple, object]] = None,
        backend: Optional[DiagramBackend] = None,
    ) -> None:
        if (node is None) == (weights is None):
            raise JeddError(
                "WeightedRelation needs exactly one of node/weights"
            )
        self.universe = universe
        self.schema = schema
        self.backend = backend or _backend_for(universe.manager)
        self._released = False
        if node is not None:
            if not self.backend.supports_weights():
                raise JeddError(
                    f"the {self.backend.name} backend cannot hold "
                    "weighted diagrams (open the universe with "
                    "backend='mtbdd')"
                )
            self.node = self.backend.ref(node)
            self._weights = None
        else:
            self.node = None
            self._weights = {
                tuple(k): w for k, w in weights.items() if w != 0
            }
        universe._note_relation(self)

    def __del__(self) -> None:
        self.dispose()

    def dispose(self) -> None:
        """Drop the diagram reference (idempotent; no-op on the table
        representation)."""
        if not self._released:
            self._released = True
            if self.node is not None:
                try:
                    self.backend.deref(self.node)
                except Exception:
                    pass  # interpreter shutdown may have torn down the manager

    @property
    def disposed(self) -> bool:
        return self._released

    def __enter__(self) -> "WeightedRelation":
        return self

    def __exit__(self, *exc) -> bool:
        self.dispose()
        return False

    @classmethod
    def from_weighted_tuples(
        cls,
        universe: Universe,
        attributes: Sequence[Attribute | str],
        rows: Iterable[Sequence],
        physdoms: Optional[Sequence[PhysicalDomain | str]] = None,
    ) -> "WeightedRelation":
        """Bulk constructor: each row is ``(*objects, weight)``.

        Repeated tuples sum their weights; tuples whose net weight is 0
        are dropped.  On the multi-terminal backend the result is
        diagram-backed (built with ``cube * weight`` summed via the
        ``add`` combinator); elsewhere it is table-backed.
        """
        schema = Relation._make_schema(universe, attributes, physdoms)
        backend = _backend_for(universe.manager)
        acc: Dict[tuple, object] = {}
        for row in rows:
            if len(row) != len(schema) + 1:
                raise JeddError(
                    f"weighted row {tuple(row)!r} does not match schema "
                    f"{schema!r} plus a weight"
                )
            *objs, weight = row
            if isinstance(weight, bool) or not isinstance(
                weight, (int, float)
            ):
                raise JeddError(
                    f"weight {weight!r} is not a number"
                )
            key = tuple(objs)
            acc[key] = acc.get(key, 0) + weight
        acc = {k: w for k, w in acc.items() if w != 0}
        if not backend.supports_weights():
            # Intern eagerly so lookups behave identically to the
            # diagram path.
            for key in acc:
                for (attr, _), obj in zip(schema.pairs, key):
                    attr.domain.intern(obj)
            return cls(universe, schema, weights=acc, backend=backend)
        node = backend.empty()
        for key, weight in acc.items():
            assignment: Dict[int, bool] = {}
            for (attr, pd), obj in zip(schema.pairs, key):
                assignment.update(
                    universe.encode_bits(pd, attr.domain.intern(obj))
                )
            node = backend.apply(
                "add",
                node,
                backend.apply(
                    "mul", backend.cube(assignment),
                    backend.terminal(weight),
                ),
            )
        return cls(universe, schema, node=node, backend=backend)

    # ------------------------------------------------------------------
    # Lookup and enumeration
    # ------------------------------------------------------------------

    def weight(self, *objs):
        """The weight of one tuple (0 when absent)."""
        if len(objs) == 1 and isinstance(objs[0], tuple) and len(
            self.schema
        ) != 1:
            objs = objs[0]
        if len(objs) != len(self.schema):
            raise JeddError(
                f"weight() takes {len(self.schema)} object(s), "
                f"got {len(objs)}"
            )
        if self._weights is not None:
            return self._weights.get(tuple(objs), 0)
        assignment: Dict[int, bool] = {}
        for (attr, pd), obj in zip(self.schema.pairs, objs):
            if obj not in attr.domain:
                return 0
            assignment.update(
                self.universe.encode_bits(pd, attr.domain.index_of(obj))
            )
        return self.backend.evaluate(self.node, assignment)

    def items(self) -> Iterator[Tuple[tuple, object]]:
        """Iterate ``(tuple, weight)`` pairs (non-zero weights only)."""
        if self._weights is not None:
            yield from self._weights.items()
            return
        levels = self.schema.levels()
        for assignment, value in self.backend.all_terminals(
            self.node, levels
        ):
            key = []
            for attr, pd in self.schema.pairs:
                idx = self.universe.decode_bits(pd, assignment)
                key.append(attr.domain.object_of(idx))
            yield tuple(key), value

    def tuples(self) -> Iterator[tuple]:
        """Iterate the tuples carrying non-zero weight."""
        return (key for key, _ in self.items())

    def as_dict(self) -> Dict[tuple, object]:
        """The full tuple->weight mapping as a plain dict."""
        return dict(self.items())

    def size(self) -> int:
        """Number of tuples with non-zero weight."""
        if self._weights is not None:
            return len(self._weights)
        return sum(1 for _ in self.items())

    def __len__(self) -> int:
        return self.size()

    def total(self):
        """Sum of all weights.

        Diagram-backed relations compute this as one
        ``add``-abstraction over all used levels (the satcount
        generalisation) — no tuple materialisation.
        """
        if self._weights is not None:
            return sum(self._weights.values())
        return self.backend.weighted_total(
            self.node, self.schema.levels()
        )

    def to_relation(self, threshold=0) -> Relation:
        """The boolean relation of tuples with ``weight > threshold``."""
        rows = [key for key, w in self.items() if w > threshold]
        return Relation.from_tuples(
            self.universe,
            [attr for attr, _ in self.schema.pairs],
            rows,
            [pd for _, pd in self.schema.pairs],
        )

    def node_count(self) -> int:
        """Diagram nodes (table-backed relations report 0)."""
        if self.node is None:
            return 0
        return self.backend.node_count(self.node)

    def __str__(self) -> str:
        """Tabular rendering with a trailing weight column."""
        names = list(self.schema.names()) + ["weight"]
        rows = [
            tuple(str(v) for v in key) + (str(w),)
            for key, w in self.items()
        ]
        rows.sort()
        widths = [
            max(len(n), *(len(r[i]) for r in rows)) if rows else len(n)
            for i, n in enumerate(names)
        ]
        header = "  ".join(n.ljust(w) for n, w in zip(names, widths))
        lines = [header, "-" * len(header)]
        for row in rows:
            lines.append(
                "  ".join(v.ljust(w) for v, w in zip(row, widths))
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        kind = "diagram" if self.node is not None else "table"
        return (
            f"WeightedRelation({self.schema!r}, {self.size()} tuples, "
            f"{kind}-backed)"
        )
