"""The long-lived incremental analysis service.

A solve in this repo used to be a batch job: build a universe, load
facts, run to fixpoint, exit.  The DRed maintenance on
:class:`~repro.relations.fixpoint.FixpointEngine` turns a solved
fixpoint into a *standing query* — ``insert``/``retract`` update every
derived relation in milliseconds — and this module keeps those standing
queries alive between requests: an asyncio server hosting named
universes, each one a :class:`~repro.shell.RelationalShell` (so clients
evaluate expressions through the same planner/IR path the shell uses,
with the plan cache staying warm across requests) plus any number of
standing fixpoint queries.

Protocol (see ``docs/SERVICE.md``): newline-delimited JSON over TCP.
Each request is one object ``{"id": N, "op": OP, ...}``; each response
``{"id": N, "ok": true, "result": ...}`` or ``{"id": N, "ok": false,
"error": "..."}``.  Requests against the same universe serialize on a
per-universe lock; different universes interleave freely.

Run the server with ``python -m repro.service [--port P]`` (it prints
``SERVICE READY host:port`` once accepting), or from the shell with
``serve``; :class:`ServiceClient` is the blocking client the shell's
``connect`` command, the tests, and ``examples/service_smoke.py`` use.

Universes checkpoint/restore through the versioned ``JDDU`` container
(:meth:`Universe.save` / :meth:`Universe.load`), and relation payloads
shipped to clients go through a wire cache keyed on the (canonical)
diagram root, so repeated reads of an unchanged relation serialize
once.  Update requests surface the engine's ``incremental.*`` telemetry
spans and gauges when a telemetry session is enabled.
"""

from __future__ import annotations

import argparse
import asyncio
import io
import json
import socket
import threading
from typing import Dict, List, Optional, Tuple

from repro import telemetry
from repro.relations import (
    ExecutionPolicy,
    FixpointEngine,
    JeddError,
    Relation,
)

__all__ = [
    "JeddService",
    "ServiceClient",
    "ServiceError",
    "ServiceHandle",
    "PROTOCOL_VERSION",
    "start_in_thread",
    "main",
]

#: Bumped on incompatible protocol changes; ``ping`` reports it so
#: clients can refuse servers they do not understand.
PROTOCOL_VERSION = 1


class ServiceError(Exception):
    """A request-level error: reported to the client, the server and
    the session survive."""


class _WireCache:
    """Serialized relation payloads keyed by canonical diagram root.

    Hash-consed diagrams make the root id a complete identity for a
    relation's content under a fixed schema, so tuple listings (and the
    binary encodings inside checkpoints) can be reused verbatim until
    the relation actually changes — the common case for a standing
    query read repeatedly between updates.
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple[int, int, tuple], object] = {}
        self.hits = 0
        self.misses = 0

    def get(self, rel: Relation, kind: str):
        key = (id(rel.universe), rel.node, (kind,) + tuple(rel.schema.names()))
        value = self._entries.get(key)
        if value is not None:
            self.hits += 1
        else:
            self.misses += 1
        return value

    def put(self, rel: Relation, kind: str, value) -> None:
        key = (id(rel.universe), rel.node, (kind,) + tuple(rel.schema.names()))
        self._entries[key] = value


class _UniverseSession:
    """One hosted universe: a shell (declarations, named relations, the
    warm planner) plus its standing fixpoint queries."""

    def __init__(self, name: str) -> None:
        from repro.shell import RelationalShell

        self.name = name
        self.out = io.StringIO()
        self.shell = RelationalShell(stdout=self.out)
        self.queries: Dict[str, FixpointEngine] = {}
        self.lock = asyncio.Lock()
        self.wire = _WireCache()
        self.requests = 0

    def drain_output(self) -> str:
        text = self.out.getvalue()
        self.out.seek(0)
        self.out.truncate(0)
        return text

    def publish_query(self, qname: str, engine: FixpointEngine) -> None:
        """Mirror a query's relations into the shell namespace (as
        ``QUERY_REL`` — underscore, so the names stay valid expression
        identifiers) for further analysis through the shell/IR
        evaluation path."""
        for rel_name, rel in engine._full.items():
            self.shell.relations[f"{qname}_{rel_name}"] = rel


class JeddService:
    """The asyncio request handler hosting named universes."""

    def __init__(self) -> None:
        self.sessions: Dict[str, _UniverseSession] = {}
        self._sessions_lock = asyncio.Lock()
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()

    # -- session plumbing ----------------------------------------------

    async def _session(self, params, create: bool = False):
        name = params.get("universe", "default")
        if not isinstance(name, str) or not name:
            raise ServiceError("universe must be a non-empty string")
        async with self._sessions_lock:
            session = self.sessions.get(name)
            created = False
            if session is None:
                if not create:
                    raise ServiceError(f"no universe {name!r} (open it first)")
                session = _UniverseSession(name)
                self.sessions[name] = session
                created = True
        return session, created

    def _query(self, session: _UniverseSession, params) -> FixpointEngine:
        qname = params.get("query")
        engine = session.queries.get(qname)
        if engine is None:
            raise ServiceError(
                f"no standing query {qname!r} in universe {session.name!r}"
            )
        return engine

    @staticmethod
    def _tuples(rel: Relation, session: _UniverseSession) -> List[list]:
        cached = session.wire.get(rel, "tuples")
        if cached is None:
            cached = sorted(list(t) for t in rel.tuples())
            session.wire.put(rel, "tuples", cached)
        return cached

    # -- operations ----------------------------------------------------

    async def op_ping(self, params):
        return {"pong": True, "protocol": PROTOCOL_VERSION}

    async def op_universes(self, params):
        out = {}
        for name, session in sorted(self.sessions.items()):
            out[name] = {
                "finalized": session.shell.universe is not None,
                "relations": sorted(session.shell.relations),
                "queries": sorted(session.queries),
                "requests": session.requests,
            }
        return out

    async def op_open(self, params):
        session, created = await self._session(params, create=True)
        return {"universe": session.name, "created": created}

    async def op_shell(self, params):
        session, _ = await self._session(params, create=True)
        line = params.get("line")
        if not isinstance(line, str):
            raise ServiceError("shell op needs a 'line' string")
        async with session.lock:
            session.requests += 1
            session.shell.onecmd(line)
            return {"output": session.drain_output()}

    async def op_eval(self, params):
        session, _ = await self._session(params)
        expr = params.get("expr")
        if not isinstance(expr, str):
            raise ServiceError("eval op needs an 'expr' string")
        async with session.lock:
            session.requests += 1
            try:
                rel = session.shell._eval(expr)
            except JeddError as err:
                raise ServiceError(str(err)) from None
            return {
                "size": rel.size(),
                "nodes": rel.node_count(),
                "tuples": self._tuples(rel, session),
            }

    async def op_query_create(self, params):
        session, _ = await self._session(params)
        qname = params.get("query")
        if not isinstance(qname, str) or not qname:
            raise ServiceError("query.create needs a 'query' name")
        if qname in session.queries:
            raise ServiceError(f"standing query {qname!r} already exists")
        async with session.lock:
            session.requests += 1
            universe = session.shell.universe
            if universe is None:
                raise ServiceError("finalize the universe first")
            policy = params.get("policy")
            engine = FixpointEngine(
                universe, ExecutionPolicy.of(policy) if policy else None
            )
            for rel_name in params.get("facts", []):
                engine.fact(rel_name, session.shell._lookup(rel_name))
            for rel_name, seed_name in dict(
                params.get("relations", {})
            ).items():
                engine.relation(
                    rel_name, session.shell._lookup(seed_name)
                )
            for rel_name, filt_name in dict(
                params.get("filters", {})
            ).items():
                engine.filter(rel_name, session.shell._lookup(filt_name))
            for spec in params.get("rules", []):
                body = [
                    (atom[0], tuple(atom[1]) if isinstance(atom[1], list)
                     else dict(atom[1]))
                    for atom in spec["body"]
                ]
                engine.rule(spec["head"], tuple(spec["vars"]), body)
            solution = engine.solve()
            session.queries[qname] = engine
            session.publish_query(qname, engine)
            return {
                "query": qname,
                "iterations": engine.iterations,
                "sizes": {n: r.size() for n, r in solution.items()},
            }

    async def op_query_update(self, params):
        session, _ = await self._session(params)
        async with session.lock:
            session.requests += 1
            engine = self._query(session, params)
            inserts = {
                name: [tuple(row) for row in rows]
                for name, rows in dict(params.get("insert", {})).items()
            }
            retracts = {
                name: [tuple(row) for row in rows]
                for name, rows in dict(params.get("retract", {})).items()
            }
            solution = engine.update(inserts=inserts, retracts=retracts)
            session.publish_query(params["query"], engine)
            return {
                "stats": dict(engine.last_update_stats or {}),
                "sizes": {n: r.size() for n, r in solution.items()},
            }

    async def op_query_get(self, params):
        session, _ = await self._session(params)
        async with session.lock:
            session.requests += 1
            engine = self._query(session, params)
            rel_name = params.get("relation")
            try:
                rel = engine[rel_name]
            except KeyError:
                raise ServiceError(
                    f"query {params['query']!r} has no relation "
                    f"{rel_name!r}"
                ) from None
            rows = self._tuples(rel, session)
            limit = params.get("limit")
            return {
                "size": rel.size(),
                "tuples": rows if limit is None else rows[: int(limit)],
                "wire_cache": {
                    "hits": session.wire.hits,
                    "misses": session.wire.misses,
                },
            }

    async def op_save(self, params):
        session, _ = await self._session(params)
        path = params.get("path")
        if not isinstance(path, str) or not path:
            raise ServiceError("save op needs a 'path'")
        async with session.lock:
            session.requests += 1
            universe = session.shell.universe
            if universe is None:
                raise ServiceError("finalize the universe first")
            count = universe.save(path, session.shell.relations)
            return {
                "path": path,
                "bytes": count,
                "relations": sorted(session.shell.relations),
            }

    async def op_load(self, params):
        session, _ = await self._session(params, create=True)
        path = params.get("path")
        if not isinstance(path, str) or not path:
            raise ServiceError("load op needs a 'path'")
        async with session.lock:
            session.requests += 1
            session.shell.onecmd(f"load {path}")
            output = session.drain_output()
            if output.startswith("error:"):
                raise ServiceError(output.strip())
            return {
                "path": path,
                "relations": sorted(session.shell.relations),
            }

    async def op_telemetry(self, params):
        mode = params.get("mode", "status")
        if mode == "on":
            tel = telemetry.enable()
            for session in self.sessions.values():
                if session.shell.universe is not None:
                    tel.instrument_universe(session.shell.universe)
            return {"enabled": True}
        if mode == "off":
            telemetry.disable()
            return {"enabled": False}
        if mode == "status":
            return {"enabled": telemetry.is_enabled()}
        raise ServiceError("telemetry mode must be on|off|status")

    async def op_trace(self, params):
        path = params.get("path")
        if not isinstance(path, str) or not path:
            raise ServiceError("trace op needs a 'path'")
        tel = telemetry.active()
        if not tel.enabled:
            raise ServiceError("telemetry is off; send telemetry on first")
        count = tel.write_chrome_trace(path, process_name="repro-service")
        return {"path": path, "events": count}

    async def op_metrics(self, params):
        tel = telemetry.active()
        if not tel.enabled:
            raise ServiceError("telemetry is off; send telemetry on first")
        return {"metrics": tel.metrics_snapshot()}

    async def op_shutdown(self, params):
        self._shutdown.set()
        return {"stopping": True}

    # -- server loop ---------------------------------------------------

    async def dispatch(self, request: dict) -> dict:
        op = request.get("op")
        handler = getattr(
            self, "op_" + str(op).replace(".", "_").replace("-", "_"), None
        )
        if not isinstance(op, str) or handler is None:
            raise ServiceError(f"unknown op {op!r}")
        return await handler(request)

    async def _handle(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                if not line.strip():
                    continue
                rid = None
                try:
                    request = json.loads(line.decode("utf-8"))
                    rid = request.get("id")
                    result = await self.dispatch(request)
                    response = {"id": rid, "ok": True, "result": result}
                except (ServiceError, JeddError) as err:
                    response = {"id": rid, "ok": False, "error": str(err)}
                except asyncio.CancelledError:
                    raise
                except Exception as err:  # server boundary: report, survive
                    response = {
                        "id": rid,
                        "ok": False,
                        "error": f"{type(err).__name__}: {err}",
                    }
                writer.write(
                    json.dumps(response, sort_keys=True).encode("utf-8")
                    + b"\n"
                )
                await writer.drain()
                if self._shutdown.is_set():
                    return
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()

    async def serve(
        self, host: str = "127.0.0.1", port: int = 0, announce=None
    ) -> None:
        """Accept requests until a ``shutdown`` op arrives."""
        self._server = await asyncio.start_server(self._handle, host, port)
        bound = self._server.sockets[0].getsockname()
        if announce is not None:
            announce(bound[0], bound[1])
        async with self._server:
            await self._shutdown.wait()

    def bound_address(self) -> Tuple[str, int]:
        if self._server is None or not self._server.sockets:
            raise ServiceError("service is not listening")
        name = self._server.sockets[0].getsockname()
        return name[0], name[1]


class ServiceHandle:
    """A service running on a background thread (the shell's ``serve``)."""

    def __init__(self, host: str, port: int, thread, loop, service) -> None:
        self.host = host
        self.port = port
        self._thread = thread
        self._loop = loop
        self.service = service

    def stop(self) -> None:
        self._loop.call_soon_threadsafe(self.service._shutdown.set)
        self._thread.join(timeout=5)


def start_in_thread(
    host: str = "127.0.0.1", port: int = 0
) -> ServiceHandle:
    """Boot a :class:`JeddService` on a daemon thread; returns a handle
    with the bound address and a ``stop()`` method."""
    service = JeddService()
    ready = threading.Event()
    bound: List[Tuple[str, int]] = []

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        holder.append(loop)

        def announce(h, p):
            bound.append((h, p))
            ready.set()

        try:
            loop.run_until_complete(service.serve(host, port, announce))
        finally:
            loop.close()

    holder: List[asyncio.AbstractEventLoop] = []
    thread = threading.Thread(target=run, name="repro-service", daemon=True)
    thread.start()
    if not ready.wait(timeout=10):
        raise ServiceError("service failed to start within 10s")
    h, p = bound[0]
    return ServiceHandle(h, p, thread, holder[0], service)


class ServiceClient:
    """Blocking JSON-lines client for :class:`JeddService`.

    Raises :class:`ServiceError` when the server reports a failed
    request; the connection stays usable afterwards.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    def request(self, op: str, **params):
        self._next_id += 1
        payload = {"id": self._next_id, "op": op}
        payload.update(params)
        self._file.write(json.dumps(payload).encode("utf-8") + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServiceError("service closed the connection")
        response = json.loads(line.decode("utf-8"))
        if not response.get("ok"):
            raise ServiceError(response.get("error", "unknown error"))
        return response.get("result")

    # Convenience wrappers for the common session verbs.

    def ping(self):
        return self.request("ping")

    def open(self, universe: str = "default"):
        return self.request("open", universe=universe)

    def shell(self, universe: str, line: str) -> str:
        return self.request("shell", universe=universe, line=line)["output"]

    def script(self, universe: str, lines) -> str:
        return "".join(self.shell(universe, line) for line in lines)

    def eval(self, universe: str, expr: str):
        return self.request("eval", universe=universe, expr=expr)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def main(argv=None) -> None:
    """Entry point for ``python -m repro.service``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run the incremental analysis service.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 picks a free one; the bound address is "
        "announced on stdout as 'SERVICE READY host:port')",
    )
    args = parser.parse_args(argv)
    service = JeddService()

    def announce(host, port):
        print(f"SERVICE READY {host}:{port}", flush=True)

    asyncio.run(service.serve(args.host, args.port, announce))


if __name__ == "__main__":  # pragma: no cover
    main()
