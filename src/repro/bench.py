"""Continuous perf baseline: normalized benchmark artifacts + diff mode.

``python -m repro.bench --out BENCH.json`` runs the repo's standard
workloads (the whole-program points-to analysis from ``benchmarks/``,
on the serial, parallel, and arena-kernel configurations, plus a cheap
transitive-closure canary) and writes one normalized JSON artifact:
per-workload wall clock, kernel work (nodes created + cache misses),
peak live nodes, and bytes shipped over the worker wire, stamped with
machine and commit metadata so artifacts from different CI runs are
comparable.

``python -m repro.bench --diff OLD.json NEW.json --threshold 0.25``
compares two artifacts workload by workload and exits non-zero when any
tracked measure regressed by more than the threshold — the regression
gate CI applies against the committed baseline.  Wall clock is gated
with the threshold as-is; the deterministic counters (kernel work, peak
nodes, shipped bytes) use the same relative threshold but ignore
small-absolute-value noise (see ``_MIN_BASE``).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "run_workloads", "write_artifact", "diff",
    "WORKLOADS", "OPT_IN_WORKLOADS", "main",
]

SCHEMA = 1

#: Measures gated by ``diff`` (higher is worse for all of them).
MEASURES = ("wall_seconds", "kernel_work", "peak_nodes", "bytes_shipped")

#: A counter regression below this absolute base value is ignored: tiny
#: workload components fluctuate by a handful of nodes without meaning.
_MIN_BASE = {"wall_seconds": 0.05, "kernel_work": 1000.0,
             "peak_nodes": 500.0, "bytes_shipped": 4096.0}


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------


def _pointsto_facts(chain_depth: int, preset_name: str = "javac"):
    """The javac preset plus a deep copy chain (the ``benchmarks/``
    parallel workload), rebuilt fresh per run."""
    from repro.analyses import preset

    facts = preset(preset_name)
    method = facts.methods[0]
    prev = None
    for i in range(chain_depth):
        var = f"chain{i}"
        facts.variables.append(var)
        facts.method_vars.append((method, var))
        facts.var_types.append((var, facts.classes[0]))
        if prev is None:
            facts.allocs.append((var, "chainsite"))
            facts.alloc_types.append(("chainsite", facts.classes[-1]))
        else:
            facts.assigns.append((var, prev))
        prev = var
    return facts


def _run_pointsto(
    chain_depth: int,
    engine: str = "seminaive",
    workers: Optional[int] = None,
    kernel: Optional[str] = None,
) -> Dict[str, float]:
    from repro.analyses import AnalysisUniverse, PointsTo
    from repro.relations import ExecutionPolicy

    facts = _pointsto_facts(chain_depth)
    au = AnalysisUniverse(facts, kernel=kernel)
    solver = PointsTo(au, policy=ExecutionPolicy(engine=engine, workers=workers))
    t0 = time.perf_counter()
    solver.solve()
    wall = time.perf_counter() - t0
    manager = au.universe.manager
    stats = manager.stats
    hits, misses = stats.op_totals()
    table = manager.table_stats()
    ps = solver.fixpoint.parallel_stats if solver.fixpoint else None
    out = {
        "wall_seconds": wall,
        "kernel_work": float(stats.nodes_created + misses),
        "nodes_created": float(stats.nodes_created),
        "cache_misses": float(misses),
        "cache_hits": float(hits),
        "peak_nodes": float(table["peak_live_nodes"]),
        "bytes_shipped": float((ps or {}).get("bytes_shipped", 0)),
        "bytes_returned": float((ps or {}).get("bytes_returned", 0)),
        "result_tuples": float(solver.pt.size()),
        "iterations": float(solver.fixpoint.iterations
                            if solver.fixpoint else 0),
    }
    if ps is not None:
        out["parallel_broken"] = float(bool(ps.get("broken")))
    return out


#: Default memory cap for the ``pointsto-xl`` workload.  The uncapped
#: solve keeps ~70 MB of kernel state resident (see
#: ``benchmarks/test_ooc.py``, which measures rather than assumes), so
#: 16 MB forces every spill mechanism: unique-table runs, page
#: eviction, and sweep-queue chunks.
XL_CAP_BYTES = 16 << 20


def _run_pointsto_xl(chain_depth: int) -> Dict[str, float]:
    """Whole-program points-to on the scaled ``javac-xl`` preset under
    the out-of-core kernel with a memory cap below the uncapped
    footprint — the same workload ``benchmarks/test_ooc.py`` uses to
    prove cap enforcement.  ``chain_depth`` is ignored: the preset
    itself is the scaled workload, and appending the synthetic copy
    chain would change the regime the cap was sized against (the chain
    widens the sweep cut, whose resolved maps are bounded by the cut,
    not the byte budgets)."""
    from repro.analyses import AnalysisUniverse, PointsTo, preset
    from repro.relations import ExecutionPolicy

    facts = preset("javac-xl")
    cap = int(os.environ.get("JEDD_OOC_CAP_BYTES", XL_CAP_BYTES))
    prior = os.environ.get("JEDD_OOC_CAP_BYTES")
    os.environ["JEDD_OOC_CAP_BYTES"] = str(cap)
    try:
        au = AnalysisUniverse(facts, kernel="ooc")
    finally:
        if prior is None:
            os.environ.pop("JEDD_OOC_CAP_BYTES", None)
        else:
            os.environ["JEDD_OOC_CAP_BYTES"] = prior
    solver = PointsTo(au, policy=ExecutionPolicy(engine="seminaive"))
    t0 = time.perf_counter()
    solver.solve()
    wall = time.perf_counter() - t0
    manager = au.universe.manager
    stats = manager.stats
    hits, misses = stats.op_totals()
    table = manager.table_stats()
    prof = manager.ooc_profile()
    return {
        "wall_seconds": wall,
        "kernel_work": float(stats.nodes_created + misses),
        "nodes_created": float(stats.nodes_created),
        "cache_misses": float(misses),
        "cache_hits": float(hits),
        "peak_nodes": float(table["peak_live_nodes"]),
        "bytes_shipped": 0.0,
        "result_tuples": float(solver.pt.size()),
        "iterations": float(solver.fixpoint.iterations
                            if solver.fixpoint else 0),
        "cap_bytes": float(prof["cap_bytes"]),
        "peak_resident_bytes": float(prof["peak_resident_bytes"]),
        "spill_bytes_written": float(prof["spill_bytes_written"]),
        "unique_flushes": float(prof["unique_flushes"]),
        "pages_evicted": float(prof["pages_evicted"]),
        "queue_rows_spilled": float(prof["queue_rows_spilled"]),
    }


def _run_closure(n: int = 48) -> Dict[str, float]:
    """Cheap canary: transitive closure of a cycle + spurs, serial."""
    from repro.relations import FixpointEngine, open_universe

    u = open_universe(
        backend="bdd",
        domains={"N": max(64, n * 2)},
        attributes={"src": "N", "dst": "N"},
        physdoms={"P1": 7, "P2": 7, "P3": 7},
    )
    edges = [(i, i + 1) for i in range(n)] + [(n, 0), (3, n + 2)]
    edge = u.relation_of(["src", "dst"], edges, ["P1", "P2"])
    eng = FixpointEngine(u, "seminaive")
    eng.fact("edge", edge)
    eng.relation("path", edge)
    eng.rule("path", ("x", "z"), [("edge", ("x", "y")), ("path", ("y", "z"))])
    t0 = time.perf_counter()
    solution = eng.solve()
    wall = time.perf_counter() - t0
    manager = u.manager
    hits, misses = manager.stats.op_totals()
    return {
        "wall_seconds": wall,
        "kernel_work": float(manager.stats.nodes_created + misses),
        "nodes_created": float(manager.stats.nodes_created),
        "cache_misses": float(misses),
        "cache_hits": float(hits),
        "peak_nodes": float(manager.table_stats()["peak_live_nodes"]),
        "bytes_shipped": 0.0,
        "bytes_returned": 0.0,
        "result_tuples": float(solution["path"].size()),
        "iterations": float(eng.iterations),
    }


def _run_warm_update(chain_depth: int, cycles: int = 8) -> Dict[str, float]:
    """Standing-query workload: one cold points-to solve, then a stream
    of single-fact retract/insert pairs against the live engine.  The
    headline measures (wall clock, kernel work) cover only the update
    stream; the cold solve's kernel work rides along as
    ``cold_kernel_work`` so the artifact shows the warm/cold ratio."""
    from repro.analyses import AnalysisUniverse, PointsTo

    facts = _pointsto_facts(chain_depth)
    au = AnalysisUniverse(facts)
    solver = PointsTo(au)
    solver.solve()
    eng = solver.fixpoint
    assert eng is not None
    manager = au.universe.manager
    stats = manager.stats
    cold_work = stats.nodes_created + stats.op_totals()[1]
    # Flap a real assignment edge: each retract forces delete/rederive
    # through the copy chain, each insert re-grows it.
    dst, src = facts.assigns[-1]
    t0 = time.perf_counter()
    for _ in range(max(1, cycles)):
        eng.retract("assign", [(dst, src)])
        eng.insert("assign", [(dst, src)])
    wall = time.perf_counter() - t0
    hits, misses = stats.op_totals()
    update_work = stats.nodes_created + misses - cold_work
    table = manager.table_stats()
    return {
        "wall_seconds": wall,
        "kernel_work": float(update_work),
        "nodes_created": float(stats.nodes_created),
        "cache_misses": float(misses),
        "cache_hits": float(hits),
        "peak_nodes": float(table["peak_live_nodes"]),
        "bytes_shipped": 0.0,
        "bytes_returned": 0.0,
        "result_tuples": float(eng["pt"].size()),
        "iterations": float(eng.iterations),
        "cold_kernel_work": float(cold_work),
        "updates": float(2 * max(1, cycles)),
        "update_speedup": float(cold_work)
        / max(1.0, update_work / (2.0 * max(1, cycles))),
    }


def _run_multiplicity(chain_depth: int) -> Dict[str, float]:
    """Quantitative workload: the whole-program points-to solve on the
    multi-terminal backend, then every per-attribute `count` aggregate
    over the result — the terminal-arithmetic path this backend exists
    for.  The aggregate sweep's wall clock rides along as
    ``aggregate_seconds`` so the artifact separates solve cost from
    counting cost."""
    from repro.analyses import AnalysisUniverse, PointsTo
    from repro.relations import ExecutionPolicy

    facts = _pointsto_facts(chain_depth)
    au = AnalysisUniverse(facts, backend="mtbdd")
    solver = PointsTo(au, policy=ExecutionPolicy(engine="seminaive"))
    t0 = time.perf_counter()
    pt = solver.solve()
    solve_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    groups = 0
    for group_by in ([], ["var"], ["obj"]):
        groups += pt.aggregate("count", group_by=group_by).size()
    agg_wall = time.perf_counter() - t0
    manager = au.universe.manager
    stats = manager.stats
    hits, misses = stats.op_totals()
    table = manager.table_stats()
    return {
        "wall_seconds": solve_wall + agg_wall,
        "aggregate_seconds": agg_wall,
        "kernel_work": float(stats.nodes_created + misses),
        "nodes_created": float(stats.nodes_created),
        "cache_misses": float(misses),
        "cache_hits": float(hits),
        "peak_nodes": float(table["peak_live_nodes"]),
        "bytes_shipped": 0.0,
        "bytes_returned": 0.0,
        "result_tuples": float(pt.count()),
        "aggregate_groups": float(groups),
        "iterations": float(solver.fixpoint.iterations
                            if solver.fixpoint else 0),
    }


#: name -> factory(chain_depth) returning the measure dict.
WORKLOADS: Dict[str, Callable[[int], Dict[str, float]]] = {
    "closure": lambda depth: _run_closure(),
    "pointsto-seminaive": lambda depth: _run_pointsto(depth),
    "pointsto-parallel2": lambda depth: _run_pointsto(
        depth, engine="parallel", workers=2
    ),
    "pointsto-arena": lambda depth: _run_pointsto(depth, kernel="arena"),
    "pointsto-warm-update": lambda depth: _run_warm_update(depth),
    "pointsto-multiplicity": _run_multiplicity,
    "pointsto-xl": _run_pointsto_xl,
}

#: Workloads excluded from the default ``run_workloads()`` sweep; they
#: only run when named explicitly (``--workloads pointsto-xl``).  The
#: capped out-of-core solve takes ~25s on its own, which would dominate
#: every baseline job that just wants the routine suite.
OPT_IN_WORKLOADS = frozenset({"pointsto-xl"})


# ----------------------------------------------------------------------
# Artifact
# ----------------------------------------------------------------------


def _commit() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10.0,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except Exception:
        return None
    return out.stdout.strip() if out.returncode == 0 else None


def machine_meta() -> Dict[str, object]:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "commit": _commit(),
    }


def run_workloads(
    names: Optional[Sequence[str]] = None,
    chain_depth: int = 80,
    repeats: int = 1,
    verbose: bool = True,
) -> Dict[str, Dict[str, float]]:
    """Run the named workloads (all by default); wall clock is best-of
    ``repeats``, the counters come from the fastest run."""
    selected = (
        list(names)
        if names
        else [n for n in WORKLOADS if n not in OPT_IN_WORKLOADS]
    )
    results: Dict[str, Dict[str, float]] = {}
    for name in selected:
        factory = WORKLOADS.get(name)
        if factory is None:
            raise SystemExit(
                f"bench: unknown workload {name!r} "
                f"(have: {', '.join(sorted(WORKLOADS))})"
            )
        best: Optional[Dict[str, float]] = None
        for _ in range(max(1, repeats)):
            run = factory(chain_depth)
            if best is None or run["wall_seconds"] < best["wall_seconds"]:
                best = run
        assert best is not None
        results[name] = best
        if verbose:
            print(
                f"bench: {name:20s} {best['wall_seconds']:8.3f}s  "
                f"kernel_work {int(best['kernel_work']):>10,}  "
                f"peak_nodes {int(best['peak_nodes']):>8,}  "
                f"shipped {int(best['bytes_shipped']):>9,}B",
                file=sys.stderr,
            )
    return results


def write_artifact(
    path: str,
    results: Dict[str, Dict[str, float]],
    chain_depth: int = 80,
    repeats: int = 1,
) -> Dict[str, object]:
    doc = {
        "schema": SCHEMA,
        "created": time.time(),
        "meta": machine_meta(),
        "config": {"chain_depth": chain_depth, "repeats": repeats},
        "workloads": results,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


# ----------------------------------------------------------------------
# Diff
# ----------------------------------------------------------------------


def diff(
    base: Dict[str, object],
    new: Dict[str, object],
    threshold: float = 0.25,
) -> Tuple[List[str], List[str]]:
    """Compare two artifacts; returns ``(regressions, notes)``.

    A measure regresses when ``new > base * (1 + threshold)`` and the
    base is large enough to be meaningful (``_MIN_BASE``).  Notes cover
    everything else worth a human glance: improvements beyond the same
    threshold, workloads present on only one side, and metadata drift
    (different machine/python) that makes wall-clock comparison soft.
    """
    regressions: List[str] = []
    notes: List[str] = []
    base_meta = base.get("meta") or {}
    new_meta = new.get("meta") or {}
    for key in ("platform", "python", "cpu_count"):
        if base_meta.get(key) != new_meta.get(key):
            notes.append(
                f"meta: {key} differs ({base_meta.get(key)!r} -> "
                f"{new_meta.get(key)!r}); wall-clock deltas are soft"
            )
    base_w: Dict[str, Dict[str, float]] = base.get("workloads") or {}
    new_w: Dict[str, Dict[str, float]] = new.get("workloads") or {}
    for name in sorted(set(base_w) | set(new_w)):
        if name not in new_w:
            notes.append(f"{name}: missing from new artifact")
            continue
        if name not in base_w:
            notes.append(f"{name}: new workload (no baseline)")
            continue
        for measure in MEASURES:
            b = float(base_w[name].get(measure, 0.0))
            n = float(new_w[name].get(measure, 0.0))
            if b < _MIN_BASE.get(measure, 0.0):
                continue
            ratio = n / b if b else float("inf")
            line = (
                f"{name}: {measure} {b:,.3f} -> {n:,.3f} "
                f"({(ratio - 1.0) * 100:+.1f}%)"
            )
            if ratio > 1.0 + threshold:
                regressions.append(line)
            elif ratio < 1.0 - threshold:
                notes.append(line + "  [improved]")
    return regressions, notes


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--out", metavar="FILE",
                        help="run workloads and write the artifact here")
    parser.add_argument("--diff", nargs=2, metavar=("OLD", "NEW"),
                        help="compare two artifacts instead of running")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative regression threshold for --diff "
                        "(default 0.25 = 25%%)")
    parser.add_argument("--workloads",
                        help="comma-separated subset to run "
                        f"(have: {', '.join(sorted(WORKLOADS))}; default "
                        "runs all except the opt-in heavyweights: "
                        f"{', '.join(sorted(OPT_IN_WORKLOADS))})")
    parser.add_argument("--chain-depth", type=int, default=80,
                        help="copy-chain depth of the points-to workloads "
                        "(default 80)")
    parser.add_argument("--repeats", type=int, default=1,
                        help="runs per workload; wall clock is best-of")
    args = parser.parse_args(argv)

    if args.diff:
        docs = []
        for path in args.diff:
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    docs.append(json.load(fh))
            except (OSError, ValueError) as err:
                print(f"bench: cannot read {path}: {err}", file=sys.stderr)
                return 2
        regressions, notes = diff(docs[0], docs[1], args.threshold)
        for note in notes:
            print(f"bench: note: {note}")
        for line in regressions:
            print(f"bench: REGRESSION: {line}")
        if regressions:
            print(
                f"bench: {len(regressions)} regression(s) beyond "
                f"{args.threshold * 100:.0f}%"
            )
            return 1
        print("bench: no regressions")
        return 0

    if not args.out:
        parser.error("one of --out or --diff is required")
    names = (
        [w.strip() for w in args.workloads.split(",") if w.strip()]
        if args.workloads else None
    )
    results = run_workloads(
        names, chain_depth=args.chain_depth, repeats=args.repeats
    )
    write_artifact(
        args.out, results, chain_depth=args.chain_depth, repeats=args.repeats
    )
    print(f"bench: wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
